// charter — command-line interface to the library, built on the public
// charter::Session facade (include/charter/).
//
// Subcommands:
//   list                          show the built-in benchmark algorithms
//   version                       build/runtime diagnostics (SIMD dispatch,
//                                 OpenMP width, engine cutoffs)
//   inspect  --algo <key>         compiled-circuit statistics + diagram
//   analyze  --algo <key>         per-gate criticality ranking
//                                 (--progress for live status, --json for
//                                 machine-readable job output)
//   analyze  --qasm-dir <dir>     bulk ingestion: one async job per *.qasm
//                                 file, per-file error isolation
//   characterize --algo <key>     error-channel estimation (depolarizing +
//                                 coherent rotation + SPAM bounds) for the
//                                 top-k gates of the criticality ranking
//   input    --algo <key>         input-block reversal impact
//   mitigate --algo <key>         serialize top layers, report error change
//   qasm     --algo <key>         emit the compiled circuit as OpenQASM 2.0
//   worker   --fd <n>             multi-process sweep child (internal; the
//                                 exec layer spawns these for --workers N)
//
// Every subcommand accepts --help; the analysis ones accept
// --backend lagos|guadalupe (default by size), --reversals, --shots,
// --seed, --top, --threads, --fused, --strategy auto|dm|fused|fused-wide|
// trajectory, --cost-profile <path>, and --adaptive.  An unknown --algo
// key lists the valid keys and exits 2.

#include <dirent.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <charter/charter.hpp>

#include "characterize/report_io.hpp"
#include "circuit/qasm_parser.hpp"
#include "exec/worker.hpp"
#include "math/simd_dispatch.hpp"
#include "noise/program.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace {

namespace cb = charter::backend;
namespace cc = charter::circ;
namespace co = charter::core;
using charter::util::Cli;
using charter::util::Table;

/// The run cache's disk tier is attached only here at the tool level (via
/// flag or environment); the library's RunCache::global() stays
/// memory-only so tests and embedders are hermetic by default.
std::string default_cache_dir() {
  const char* dir = std::getenv("CHARTER_CACHE_DIR");
  return dir != nullptr ? dir : "";
}

void add_common_flags(Cli& cli) {
  cli.add_flag("algo", std::string("qft3"),
               "benchmark key (see `charter list`)");
  cli.add_flag("backend", std::string("auto"),
               "lagos, guadalupe, or auto (by circuit size)");
  cli.add_flag("reversals", std::int64_t{5}, "reversed pairs per gate");
  cli.add_flag("shots", std::int64_t{8192}, "shots per run (0 = exact)");
  cli.add_flag("seed", std::int64_t{2022}, "master seed");
  cli.add_flag("top", std::int64_t{15}, "rows to print in rankings");
  cli.add_flag("max-gates", std::int64_t{0},
               "cap analyzed gates (0 = all eligible)");
  cli.add_flag("fused", false,
               "fuse the lowered noise tape (faster; ~1e-12 tolerance)");
  cli.add_flag("threads", std::int64_t{0},
               "analysis worker-pool width (0 = all hardware threads; "
               "results are identical at every value)");
  cli.add_flag("workers", std::int64_t{0},
               "fan the sweep out to N `charter worker` child processes "
               "(0 = in-process; results are identical at every value)");
  cli.add_flag("cache-dir", default_cache_dir(),
               "persistent run-cache directory (default $CHARTER_CACHE_DIR; "
               "empty = memory-only)");
  cli.add_flag("strategy", std::string("auto"),
               "execution strategy: auto (cost-model planner), dm, fused, "
               "fused-wide, or trajectory");
  cli.add_flag("cost-profile", std::string(""),
               "persisted cost-model path: loaded before the run, saved "
               "after (empty = in-memory only)");
  cli.add_flag("adaptive", false,
               "adaptive trajectory budgets: stop unravelling a gate once "
               "its impact rank settles (fixed budgets by default)");
}

/// Looks up --algo, and on an unknown key prints the valid ones and exits
/// nonzero instead of surfacing a bare NotFound.
charter::algos::AlgoSpec find_spec(const Cli& cli) {
  const std::string key = cli.get_string("algo");
  try {
    return charter::algos::find_benchmark(key);
  } catch (const charter::NotFound&) {
    std::fprintf(stderr, "charter: unknown benchmark key '%s'\n",
                 key.c_str());
    std::fprintf(stderr, "valid keys (see `charter list`):\n");
    for (const auto& spec : charter::algos::paper_benchmarks())
      std::fprintf(stderr, "  %-12s %s\n", spec.key.c_str(),
                   spec.name.c_str());
    std::exit(2);
  }
}

cb::FakeBackend make_backend(const Cli& cli,
                             const charter::algos::AlgoSpec& spec) {
  const std::string name = cli.get_string("backend");
  if (name == "lagos") return cb::FakeBackend::lagos();
  if (name == "guadalupe") return cb::FakeBackend::guadalupe();
  if (name == "auto")
    return spec.qubits <= 7 ? cb::FakeBackend::lagos()
                            : cb::FakeBackend::guadalupe();
  throw charter::InvalidArgument("unknown backend: " + name +
                                 " (expected lagos, guadalupe, or auto)");
}

charter::SessionConfig make_config(const Cli& cli) {
  const int workers = static_cast<int>(cli.get_int("workers"));
  const std::string strategy_name = cli.get_string("strategy");
  const auto strategy = charter::exec::strategy_from_name(strategy_name);
  if (!strategy.has_value())
    throw charter::InvalidArgument(
        "unknown --strategy '" + strategy_name +
        "' (expected auto, dm, fused, fused-wide, or trajectory)");
  charter::SessionConfig config = charter::SessionConfig()
      .reversals(static_cast<int>(cli.get_int("reversals")))
      .max_gates(static_cast<int>(cli.get_int("max-gates")))
      .shots(cli.get_int("shots"))
      .seed(static_cast<std::uint64_t>(cli.get_int("seed")));
  config.execution()
      .fused(cli.get_bool("fused"))
      .threads(static_cast<int>(cli.get_int("threads")))
      .workers(workers)
      .cache_dir(cli.get_string("cache-dir"))
      .strategy(*strategy)
      .adaptive(cli.get_bool("adaptive"))
      .cost_profile(cli.get_string("cost-profile"));
  // Workers fork+exec this very binary (`charter worker --fd N`): the
  // children get a fresh address space instead of a forked image.
  if (workers > 0) config.execution().worker_exe("/proc/self/exe");
  return config;
}

/// The `charter worker` subcommand: serve work units on an inherited
/// socketpair fd until the parent closes it.  Spawned by the exec layer,
/// never by hand.
int cmd_worker(int argc, const char* const* argv) {
  Cli cli("charter worker: multi-process sweep child (internal)");
  cli.add_flag("fd", std::int64_t{-1},
               "inherited socketpair file descriptor to serve on");
  if (!cli.parse(argc, argv)) return 0;
  const int fd = static_cast<int>(cli.get_int("fd"));
  if (fd < 0) {
    std::fprintf(stderr, "charter worker: --fd is required\n");
    return 2;
  }
  return charter::exec::worker_serve(fd);
}

int cmd_version(int argc, const char* const* argv) {
  Cli cli("charter version: build/runtime diagnostics");
  cli.add_flag("verbose", false,
               "also report run-cache configuration and per-tier counters");
  if (!cli.parse(argc, argv)) return 0;
  namespace simd = charter::math::simd;
  std::printf("charter %s (Charter reproduction, C++%ld)\n",
              CHARTER_VERSION_STRING,
              static_cast<long>(__cplusplus / 100 % 100));
  std::printf("  simd dispatch : %s\n",
              simd::path_name(simd::active_path()));
  std::printf("  simd available: %s\n", simd::available_paths().c_str());
  std::printf("  simd override : %s\n",
              std::getenv("CHARTER_SIMD") != nullptr
                  ? std::getenv("CHARTER_SIMD")
                  : "(none; set CHARTER_SIMD=scalar|sse2|neon|avx2|avx512)");
  std::printf("  fusion width  : %d%s\n", charter::noise::fusion_width(),
              std::getenv("CHARTER_FUSION_WIDTH") != nullptr
                  ? " (from CHARTER_FUSION_WIDTH)"
                  : " (default; set CHARTER_FUSION_WIDTH=2|3)");
  std::printf("  environment   : %s\n",
              cb::run_environment_summary().c_str());
  if (cli.get_bool("verbose")) {
    // Attach the disk tier exactly as the analysis subcommands would, so
    // the entry/byte counts describe the directory a run would hit.
    const std::string cache_dir = default_cache_dir();
    if (!cache_dir.empty())
      charter::exec::RunCache::global().set_disk_tier(cache_dir);
    const auto stats = charter::Session::cache_stats();
    std::printf("  cache dir     : %s\n",
                cache_dir.empty() ? "(memory-only; set CHARTER_CACHE_DIR)"
                                  : cache_dir.c_str());
    std::printf("  cache memory  : %zu entries, %zu bytes "
                "(%zu hits, %zu misses, %zu evictions)\n",
                stats.memory.entries, stats.memory.bytes, stats.memory.hits,
                stats.memory.misses, stats.memory.evictions);
    std::printf("  cache disk    : %zu entries, %zu bytes "
                "(%zu hits, %zu misses, %zu evictions)\n",
                stats.disk.entries, stats.disk.bytes, stats.disk.hits,
                stats.disk.misses, stats.disk.evictions);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// charter client — drive a running charterd over its socket
// ---------------------------------------------------------------------------

int cmd_client(int argc, const char* const* argv) {
  namespace cs = charter::service;
  const std::string ops =
      "ping|submit|characterize|status|wait|fetch|cancel|stats|shutdown";
  if (argc < 2) {
    std::fprintf(stderr, "usage: charter client <%s> [flags]\n", ops.c_str());
    return 2;
  }
  const std::string op = argv[1];
  Cli cli("charter client " + op + ": one request to a running charterd");
  cli.add_flag("socket", cs::Client::default_socket_path(),
               "charterd socket path");
  cli.add_flag("tenant", std::string("default"),
               "tenant name for fair-share scheduling (submit)");
  cli.add_flag("algo", std::string(""),
               "benchmark key to submit (see `charter list`)");
  cli.add_flag("qasm-file", std::string(""),
               "submit an OpenQASM 2.0 file instead of --algo");
  cli.add_flag("job", std::int64_t{0}, "job id (status/wait/fetch/cancel)");
  cli.add_flag("detach", false,
               "keep the job running after this client disconnects");
  cli.add_flag("wait", false, "after submit, block until the job finishes");
  cli.add_flag("shots", std::int64_t{-1}, "override shots (-1 = daemon default)");
  cli.add_flag("seed", std::int64_t{-1}, "override seed (-1 = daemon default)");
  cli.add_flag("reversals", std::int64_t{-1},
               "override reversed pairs (-1 = daemon default)");
  cli.add_flag("max-gates", std::int64_t{-1},
               "override analyzed-gate cap (-1 = daemon default)");
  cli.add_flag("top-k", std::int64_t{-1},
               "characterize: gates to characterize (-1 = daemon default)");
  if (!cli.parse(argc - 1, argv + 1)) return 0;

  std::string request;
  if (op == "ping" || op == "stats" || op == "shutdown") {
    request = "{\"op\":\"" + op + "\"}";
  } else if (op == "status" || op == "wait" || op == "fetch" ||
             op == "cancel") {
    if (cli.get_int("job") <= 0) {
      std::fprintf(stderr, "charter client %s needs --job <id>\n",
                   op.c_str());
      return 2;
    }
    request = "{\"op\":\"" + op +
              "\",\"job\":" + std::to_string(cli.get_int("job")) + "}";
  } else if (op == "submit" || op == "characterize") {
    const std::string algo = cli.get_string("algo");
    const std::string qasm_file = cli.get_string("qasm-file");
    if (algo.empty() == qasm_file.empty()) {
      std::fprintf(stderr,
                   "charter client %s needs exactly one of --algo or "
                   "--qasm-file\n",
                   op.c_str());
      return 2;
    }
    request = "{\"op\":\"" + op + "\",\"tenant\":\"" +
              cs::json_escape(cli.get_string("tenant")) + "\"";
    if (!algo.empty()) {
      request += ",\"benchmark\":\"" + cs::json_escape(algo) + "\"";
    } else {
      std::FILE* f = std::fopen(qasm_file.c_str(), "rb");
      if (f == nullptr) {
        std::fprintf(stderr, "charter: cannot read %s\n", qasm_file.c_str());
        return 1;
      }
      std::string source;
      char buf[4096];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        source.append(buf, n);
      std::fclose(f);
      request += ",\"qasm\":\"" + cs::json_escape(source) + "\"";
    }
    if (cli.get_bool("detach")) request += ",\"detach\":true";
    for (const char* field : {"shots", "seed", "reversals", "max-gates"}) {
      if (cli.get_int(field) >= 0) {
        const std::string key =
            std::strcmp(field, "max-gates") == 0 ? "max_gates" : field;
        request += ",\"" + key + "\":" + std::to_string(cli.get_int(field));
      }
    }
    if (op == "characterize" && cli.get_int("top-k") >= 1)
      request += ",\"top_k\":" + std::to_string(cli.get_int("top-k"));
    request += "}";
  } else {
    std::fprintf(stderr, "charter client: unknown op '%s' (expected %s)\n",
                 op.c_str(), ops.c_str());
    return 2;
  }

  cs::Client client(cli.get_string("socket"));
  std::string response = client.call_raw(request);
  std::printf("%s\n", response.c_str());

  cs::JsonValue parsed = cs::parse_json(response);
  const cs::JsonValue* ok = parsed.find("ok");
  if (ok == nullptr || !ok->is_bool() || !ok->boolean) return 1;

  if ((op == "submit" || op == "characterize") && cli.get_bool("wait")) {
    const cs::JsonValue* id = parsed.find("job");
    if (id == nullptr || !id->is_number()) return 1;
    response = client.call_raw(
        "{\"op\":\"wait\",\"job\":" +
        std::to_string(static_cast<std::int64_t>(id->number)) + "}");
    std::printf("%s\n", response.c_str());
    parsed = cs::parse_json(response);
    const cs::JsonValue* status = parsed.find("status");
    if (status == nullptr || !status->is_string() ||
        status->string != "done")
      return 1;
  }
  return 0;
}

int cmd_list(int argc, const char* const* argv) {
  Cli cli("charter list: the built-in benchmark algorithms");
  if (!cli.parse(argc, argv)) return 0;
  Table table("Built-in benchmark algorithms (paper Table II + extensions):");
  table.set_header({"Key", "Name", "Qubits", "Gates (logical)"});
  for (const auto& spec : charter::algos::extended_benchmarks()) {
    table.add_row({spec.key, spec.name, std::to_string(spec.qubits),
                   std::to_string(spec.build().size())});
  }
  table.print();
  return 0;
}

int cmd_inspect(int argc, const char* const* argv) {
  Cli cli("charter inspect: compiled-circuit statistics");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto spec = find_spec(cli);
  const cb::FakeBackend backend = make_backend(cli, spec);
  charter::Session session(backend, make_config(cli));
  const cb::CompiledProgram prog = session.compile(spec.build());

  const auto count = [&](cc::GateKind k) {
    return prog.physical.count_kind(k);
  };
  std::printf("%s on %s\n", spec.name.c_str(), backend.name().c_str());
  std::printf("  gates: rz=%zu sx=%zu x=%zu cx=%zu (depth %d)\n",
              count(cc::GateKind::RZ), count(cc::GateKind::SX),
              count(cc::GateKind::X), count(cc::GateKind::CX),
              prog.physical.depth());
  std::printf("  schedule length: %.0f ns\n",
              backend.duration_ns(prog));
  std::printf("  layout (logical -> physical):");
  for (int q = 0; q < prog.num_logical; ++q)
    std::printf(" %d->%d", q, prog.final_layout[static_cast<std::size_t>(q)]);
  std::printf("\n\n%s", cc::to_ascii(prog.physical, 60).c_str());
  return 0;
}

/// Bulk QASM ingestion: every *.qasm file in \p dir becomes one async
/// Session job.  A file that fails to parse, compile, or analyze is
/// reported and skipped — it never aborts the batch (per-file error
/// isolation).  Returns 0 when at least one file succeeded.
int analyze_qasm_dir(const Cli& cli, const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    std::fprintf(stderr, "charter: cannot open directory %s\n", dir.c_str());
    return 1;
  }
  while (const dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (name.size() > 5 && name.compare(name.size() - 5, 5, ".qasm") == 0)
      files.push_back(name);
  }
  ::closedir(d);
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "charter: no *.qasm files in %s\n", dir.c_str());
    return 1;
  }

  // Parse every file first (isolated: a bad file is a table row, not an
  // abort), then pick one device that admits the widest good circuit.
  struct Entry {
    std::string file;
    cc::Circuit circuit{1};
    std::string error;
    charter::JobHandle job;
  };
  std::vector<Entry> entries;
  int max_qubits = 0;
  for (const std::string& file : files) {
    Entry e;
    e.file = file;
    try {
      e.circuit = cc::parse_qasm_file(dir + "/" + file);
      max_qubits = std::max(max_qubits, e.circuit.num_qubits());
    } catch (const charter::Error& err) {
      e.error = err.what();
    }
    entries.push_back(std::move(e));
  }
  const cb::FakeBackend backend = max_qubits <= 7
                                      ? cb::FakeBackend::lagos()
                                      : cb::FakeBackend::guadalupe();
  charter::Session session(backend, make_config(cli));

  // One async job per parsed file; compile errors are isolated the same
  // way.  Submission order fixes job ids, so output order is stable.
  for (Entry& e : entries) {
    if (!e.error.empty()) continue;
    try {
      e.job = session.submit(session.compile(e.circuit));
    } catch (const charter::Error& err) {
      e.error = err.what();
    }
  }

  Table table("Bulk analysis of " + dir + " on " + backend.name() + ":");
  table.set_header({"File", "Status", "Gates", "Top impact (TVD)"});
  std::size_t succeeded = 0;
  for (Entry& e : entries) {
    if (e.error.empty() && e.job.valid()) {
      const charter::JobResult& r = e.job.wait();
      if (r.status == charter::JobStatus::kDone) {
        ++succeeded;
        const auto ranked = r.report.sorted_by_impact();
        table.add_row({e.file, "done",
                       std::to_string(r.report.analyzed_gates),
                       ranked.empty() ? "-" : Table::fmt(ranked[0].tvd, 3)});
        continue;
      }
      e.error = r.error.empty() ? charter::to_string(r.status) : r.error;
    }
    table.add_row({e.file, "failed", "-", "-"});
    std::fprintf(stderr, "charter: %s: %s\n", e.file.c_str(),
                 e.error.c_str());
  }
  table.add_footnote(std::to_string(succeeded) + " of " +
                     std::to_string(entries.size()) + " files analyzed");
  table.print();
  return succeeded > 0 ? 0 : 1;
}

int cmd_analyze(int argc, const char* const* argv) {
  Cli cli("charter analyze: per-gate criticality via amplified reversals");
  add_common_flags(cli);
  cli.add_flag("progress", false, "stream job progress to stderr");
  cli.add_flag("json", false,
               "emit the full report as JSON on stdout (job id/status, "
               "impacts, exec stats) instead of the table");
  cli.add_flag("qasm-dir", std::string(""),
               "analyze every *.qasm file in this directory (one async job "
               "per file; a bad file is reported and skipped)");
  if (!cli.parse(argc, argv)) return 0;
  if (!cli.get_string("qasm-dir").empty())
    return analyze_qasm_dir(cli, cli.get_string("qasm-dir"));
  const auto spec = find_spec(cli);
  const bool progress = cli.get_bool("progress");
  const bool json = cli.get_bool("json");

  const cb::FakeBackend backend = make_backend(cli, spec);
  charter::Session session(backend, make_config(cli));
  const cb::CompiledProgram prog = session.compile(spec.build());

  charter::JobCallbacks callbacks;
  if (progress) {
    callbacks.on_progress = [](const charter::JobProgress& p) {
      std::fprintf(stderr, "\rcharter: %zu/%zu runs", p.completed, p.total);
      if (p.completed == p.total) std::fputc('\n', stderr);
    };
  }
  const charter::JobHandle job = session.submit(prog, callbacks);
  const charter::JobResult& result = job.wait();
  if (result.status != charter::JobStatus::kDone) {
    std::fprintf(stderr, "charter: job %llu %s%s%s\n",
                 static_cast<unsigned long long>(job.id()),
                 charter::to_string(result.status).c_str(),
                 result.error.empty() ? "" : ": ",
                 result.error.c_str());
    return 1;
  }
  const co::CharterReport& report = result.report;

  if (json) {
    std::printf("{\"job\": {\"id\": %llu, \"status\": \"%s\", "
                "\"algo\": \"%s\", \"backend\": \"%s\"},\n\"report\": ",
                static_cast<unsigned long long>(job.id()),
                charter::to_string(result.status).c_str(),
                spec.key.c_str(), backend.name().c_str());
    std::fputs(co::report_to_json(report, report.exec_stats).c_str(),
               stdout);
    std::fputs("}\n", stdout);
    return 0;
  }

  Table table(spec.name + " on " + backend.name() +
              " -- gates ranked by error impact:");
  table.set_header({"Rank", "Gate", "Phys qubits", "Layer", "Impact (TVD)"});
  const auto ranked = report.sorted_by_impact();
  const std::size_t rows = std::min<std::size_t>(
      static_cast<std::size_t>(cli.get_int("top")), ranked.size());
  for (std::size_t i = 0; i < rows; ++i) {
    const auto& g = ranked[i];
    std::string qubits = std::to_string(g.qubits[0]);
    if (g.num_qubits == 2) qubits += "," + std::to_string(g.qubits[1]);
    table.add_row({std::to_string(i + 1), cc::gate_name(g.kind), qubits,
                   std::to_string(g.layer), Table::fmt(g.tvd, 3)});
  }
  const auto corr = report.layer_correlation();
  table.add_footnote(std::to_string(report.analyzed_gates) + " of " +
                     std::to_string(report.total_gates) +
                     " gates analyzed (RZ skipped); impact-vs-layer corr " +
                     Table::fmt(corr.r, 2) +
                     " (p=" + Table::fmt_pvalue(corr.p_value) + ")");
  table.print();
  return 0;
}

int cmd_characterize(int argc, const char* const* argv) {
  Cli cli("charter characterize: error-channel estimation for the top-k "
          "gates of the criticality ranking");
  add_common_flags(cli);
  cli.add_flag("top-k", std::int64_t{3},
               "gates to characterize, from the Charter ranking");
  cli.add_flag("progress", false, "stream job progress to stderr");
  cli.add_flag("json", false,
               "emit the CharacterizationReport as JSON on stdout");
  if (!cli.parse(argc, argv)) return 0;
  const auto spec = find_spec(cli);
  const cb::FakeBackend backend = make_backend(cli, spec);
  charter::Session session(backend, make_config(cli));
  const cb::CompiledProgram prog = session.compile(spec.build());

  charter::JobCallbacks callbacks;
  if (cli.get_bool("progress")) {
    callbacks.on_progress = [](const charter::JobProgress& p) {
      std::fprintf(stderr, "\rcharter: %zu/%zu runs", p.completed, p.total);
      if (p.completed == p.total) std::fputc('\n', stderr);
    };
  }
  const co::CharterReport report = session.analyze(prog);
  const charter::JobHandle job = session.submit_characterization(
      prog, report, static_cast<int>(cli.get_int("top-k")), callbacks);
  const charter::JobResult& result = job.wait();
  if (result.status != charter::JobStatus::kDone) {
    std::fprintf(stderr, "charter: job %llu %s%s%s\n",
                 static_cast<unsigned long long>(job.id()),
                 charter::to_string(result.status).c_str(),
                 result.error.empty() ? "" : ": ", result.error.c_str());
    return 1;
  }
  const charter::characterize::CharacterizationReport& ch =
      result.characterization;

  if (cli.get_bool("json")) {
    std::fputs(charter::characterize::characterization_to_json(ch).c_str(),
               stdout);
    return 0;
  }

  Table table(spec.name + " on " + backend.name() +
              " -- error channels of the top-" +
              std::to_string(ch.gates.size()) + " gates:");
  table.set_header({"Gate", "Phys qubits", "Charter TVD", "Depol/app",
                    "Rotation (rad)", "Severity @r", "SPAM p01/p10"});
  for (const auto& g : ch.gates) {
    std::string qubits = std::to_string(g.qubits[0]);
    if (g.num_qubits == 2) qubits += "," + std::to_string(g.qubits[1]);
    table.add_row(
        {cc::gate_name(g.kind), qubits, Table::fmt(g.charter_tvd, 3),
         Table::fmt(g.fit.depol_per_application(), 4) + " [" +
             Table::fmt(g.ci.depol.lower, 4) + ", " +
             Table::fmt(g.ci.depol.upper, 4) + "]",
         Table::fmt(g.fit.phi, 4) + " [" + Table::fmt(g.ci.rotation.lower, 4) +
             ", " + Table::fmt(g.ci.rotation.upper, 4) + "]",
         Table::fmt(g.severity, 3),
         Table::fmt(g.spam_p01, 3) + "/" + Table::fmt(g.spam_p10, 3)});
  }
  table.add_footnote(
      "germ depths {" + [&] {
        std::string s;
        for (std::size_t i = 0; i < ch.depths.size(); ++i)
          s += (i != 0 ? "," : "") + std::to_string(ch.depths[i]);
        return s;
      }() + "}; severity at r=" + std::to_string(ch.severity_reversals) +
      "; GST-vs-Charter rank agreement " + Table::fmt(ch.rank_agreement, 2));
  table.print();
  return 0;
}

int cmd_input(int argc, const char* const* argv) {
  Cli cli("charter input: combined impact of the input-preparation block");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto spec = find_spec(cli);
  const cb::FakeBackend backend = make_backend(cli, spec);
  charter::Session session(backend, make_config(cli));
  const cb::CompiledProgram prog = session.compile(spec.build());
  std::printf("%s input-block reversal impact: %.4f TVD\n",
              spec.name.c_str(), session.input_impact(prog));
  return 0;
}

int cmd_mitigate(int argc, const char* const* argv) {
  Cli cli("charter mitigate: serialize high-impact layers");
  add_common_flags(cli);
  cli.add_flag("fraction", 0.1, "top-impact gate fraction to serialize");
  if (!cli.parse(argc, argv)) return 0;
  const auto spec = find_spec(cli);
  const cb::FakeBackend backend = make_backend(cli, spec);
  charter::Session session(backend, make_config(cli));
  const cb::CompiledProgram prog = session.compile(spec.build());
  const co::CharterReport report = session.analyze(prog);

  cb::CompiledProgram mitigated = prog;
  mitigated.physical = co::serialize_high_impact(
      prog.physical, report, cli.get_double("fraction"));

  cb::RunOptions run;
  run.shots = 0;
  run.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
  const auto ideal = backend.ideal(prog);
  const double before =
      charter::stats::tvd(backend.run(prog, run), ideal);
  const double after =
      charter::stats::tvd(backend.run(mitigated, run), ideal);
  std::printf("%s: output TVD vs ideal %.4f -> %.4f (%+.1f points), "
              "schedule %.0f -> %.0f ns\n",
              spec.name.c_str(), before, after, 100.0 * (after - before),
              backend.duration_ns(prog), backend.duration_ns(mitigated));
  return 0;
}

int cmd_qasm(int argc, const char* const* argv) {
  Cli cli("charter qasm: emit the compiled circuit as OpenQASM 2.0");
  add_common_flags(cli);
  if (!cli.parse(argc, argv)) return 0;
  const auto spec = find_spec(cli);
  const cb::FakeBackend backend = make_backend(cli, spec);
  charter::Session session(backend, make_config(cli));
  const cb::CompiledProgram prog = session.compile(spec.build());
  std::fputs(cc::to_qasm(prog.physical).c_str(), stdout);
  return 0;
}

void usage() {
  std::fputs(
      "usage: charter <list|version|inspect|analyze|characterize|input|"
      "mitigate|qasm|client> [flags]\n"
      "run `charter <command> --help` for the command's flags\n"
      "`charter client <op>` talks to a running charterd (see charterd "
      "--help)\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "list") return cmd_list(argc - 1, argv + 1);
    if (cmd == "version" || cmd == "--version")
      return cmd_version(argc - 1, argv + 1);
    if (cmd == "inspect") return cmd_inspect(argc - 1, argv + 1);
    if (cmd == "analyze") return cmd_analyze(argc - 1, argv + 1);
    if (cmd == "characterize") return cmd_characterize(argc - 1, argv + 1);
    if (cmd == "input") return cmd_input(argc - 1, argv + 1);
    if (cmd == "mitigate") return cmd_mitigate(argc - 1, argv + 1);
    if (cmd == "qasm") return cmd_qasm(argc - 1, argv + 1);
    if (cmd == "client") return cmd_client(argc - 1, argv + 1);
    if (cmd == "worker") return cmd_worker(argc - 1, argv + 1);
    usage();
    return 2;
  } catch (const charter::Error& e) {
    std::fprintf(stderr, "charter: %s\n", e.what());
    return 1;
  }
}
