// Tests for the NoiseProgram tape: exact lowering is equivalent to the
// streaming walk, fused tapes agree with exact tapes to 1e-12 while being
// strictly smaller, spliced lowering reproduces full lowering bit-exactly,
// and fingerprints separate exact from fused tapes.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>

#include "circuit/circuit.hpp"
#include "core/reversal.hpp"
#include "noise/calibration.hpp"
#include "noise/executor.hpp"
#include "noise/program.hpp"
#include "noise/serialize.hpp"
#include "sim/density_matrix.hpp"
#include "sim/snapshot.hpp"
#include "sim/trajectory.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cc = charter::circ;
namespace cn = charter::noise;
namespace cs = charter::sim;
using cc::GateKind;

namespace {

/// Line-coupled device with heterogeneous generated calibration: every
/// noise mechanism (decoherence, depolarizing, over-rotation, static and
/// drive ZZ, SPAM) is active, so fusion legality is exercised against the
/// full channel set.
cn::NoiseModel line_model(int n, std::uint64_t seed) {
  std::vector<std::pair<int, int>> edges;
  for (int q = 0; q + 1 < n; ++q) edges.emplace_back(q, q + 1);
  cn::NoiseModel m = cn::generate_calibration(n, edges, seed);
  // Make the coherent CX error non-trivial so diag-2q fusion paths run.
  for (const auto& [a, b] : m.edges()) m.edge(a, b).cx_zz_angle = 0.01;
  return m;
}

/// Random basis-gate circuit over a line coupling.
cc::Circuit random_basis_circuit(int n, int num_gates, std::uint64_t seed) {
  charter::util::Rng rng(seed);
  cc::Circuit c(n);
  for (int i = 0; i < num_gates; ++i) {
    switch (rng.uniform_int(6)) {
      case 0:
        c.rz(static_cast<int>(rng.uniform_int(n)),
             rng.uniform() * 2.0 * M_PI - M_PI);
        break;
      case 1:
        c.sx(static_cast<int>(rng.uniform_int(n)));
        break;
      case 2:
        c.sxdg(static_cast<int>(rng.uniform_int(n)));
        break;
      case 3:
        c.x(static_cast<int>(rng.uniform_int(n)));
        break;
      default: {
        const int a = static_cast<int>(rng.uniform_int(n - 1));
        if (rng.bernoulli(0.5))
          c.cx(a, a + 1);
        else
          c.cx(a + 1, a);
        break;
      }
    }
  }
  return c;
}

double max_abs_diff(const std::vector<charter::math::cplx>& a,
                    const std::vector<charter::math::cplx>& b) {
  EXPECT_EQ(a.size(), b.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

}  // namespace

TEST(NoiseProgram, ExactTapeMatchesStreamingWalkBitExactly) {
  const cn::NoiseModel m = line_model(4, 11);
  const cc::Circuit c = random_basis_circuit(4, 40, 3);
  const cn::NoisyExecutor executor(m);

  // run() interprets the whole tape; the streaming API interprets it one
  // circuit-op segment at a time.  Both must agree bit-for-bit.
  cs::DensityMatrixEngine whole(4);
  executor.run(c, whole);

  cn::NoisyExecutor::Stream stream = executor.make_stream(c);
  cs::DensityMatrixEngine stepped(4);
  executor.start(c, stream, stepped);
  while (stream.next_op < c.size()) executor.step(c, stream, stepped);
  executor.finish(c, stream, stepped);

  EXPECT_EQ(max_abs_diff(whole.raw(), stepped.raw()), 0.0);
}

TEST(NoiseProgram, BoundariesPartitionTheTape) {
  const cn::NoiseModel m = line_model(3, 5);
  const cc::Circuit c = random_basis_circuit(3, 20, 9);
  const cn::NoiseProgram p = cn::lower(m, c);

  ASSERT_EQ(p.num_circuit_ops(), c.size());
  EXPECT_GE(p.prologue_end(), 0u);
  std::size_t prev = p.prologue_end();
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(p.op_begin(i), prev);
    EXPECT_GE(p.op_end(i), p.op_begin(i));
    prev = p.op_end(i);
  }
  EXPECT_EQ(p.epilogue_begin(), prev);
  EXPECT_GE(p.size(), prev);
}

TEST(NoiseProgram, FusedTapeAgreesWithinTolerance) {
  // Satellite acceptance: fused-vs-exact state max-norm <= 1e-12 on random
  // basis-gate circuits.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const cn::NoiseModel m = line_model(5, 100 + seed);
    const cc::Circuit c = random_basis_circuit(5, 60, seed);
    const cn::NoiseProgram exact = cn::lower(m, c);
    const cn::NoiseProgram fused = cn::fused(exact);

    EXPECT_LT(fused.size(), exact.size()) << "fusion should shrink the tape";

    cs::DensityMatrixEngine a(5), b(5);
    exact.execute(a);
    fused.execute(b);
    EXPECT_LE(max_abs_diff(a.raw(), b.raw()), 1e-12) << "seed " << seed;
  }
}

TEST(NoiseProgram, FusedWideTapeAgreesWithinTolerance) {
  // Tentpole acceptance: wide-gate fusion consolidates coherent runs into
  // dense 2q/3q unitaries and still agrees with the exact tape to 1e-12.
  for (const std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL, 5ULL}) {
    const cn::NoiseModel m = line_model(5, 200 + seed);
    const cc::Circuit c = random_basis_circuit(5, 60, seed);
    const cn::NoiseProgram exact = cn::lower(m, c);
    for (const int width : {2, 3}) {
      const cn::NoiseProgram wide = cn::fused_wide(exact, 0, width);
      EXPECT_EQ(wide.level(), cn::OptLevel::kFusedWide);
      EXPECT_LT(wide.size(), exact.size())
          << "wide fusion should shrink the tape";

      cs::DensityMatrixEngine a(5), b(5);
      exact.execute(a);
      wide.execute(b);
      EXPECT_LE(max_abs_diff(a.raw(), b.raw()), 1e-12)
          << "seed " << seed << " width " << width;
    }
  }
}

TEST(NoiseProgram, FusedWideTrajectoryAgreesAndPreservesRanking) {
  // Trajectory runs honor kFusedWide because stochastic channels stay
  // in-order barriers: the RNG draw sequence matches the exact tape, so
  // per-seed results agree within the fusion tolerance and the outcome
  // ranking is unchanged.
  const int n = 5;
  const cn::NoiseModel m = line_model(n, 307);
  const cc::Circuit c = random_basis_circuit(n, 60, 71);
  const cn::NoiseProgram exact = cn::lower(m, c);
  const cn::NoiseProgram wide = cn::fused_wide(exact);

  const auto run = [&](const cn::NoiseProgram& tape) {
    return cs::run_trajectories(
        n, 24, 0x5eedULL,
        [&](cs::NoisyEngine& engine) { tape.execute(engine); });
  };
  const std::vector<double> pe = run(exact);
  const std::vector<double> pw = run(wide);
  ASSERT_EQ(pe.size(), pw.size());
  double worst = 0.0;
  for (std::size_t i = 0; i < pe.size(); ++i)
    worst = std::max(worst, std::abs(pe[i] - pw[i]));
  EXPECT_LE(worst, 1e-12);

  // Ranking equality: sorting outcomes by probability must give the same
  // order on both tapes (the exact density-matrix ranking check below is
  // the stronger cross-engine version).
  const auto ranking = [](const std::vector<double>& p) {
    std::vector<std::size_t> order(p.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return p[a] != p[b] ? p[a] > p[b] : a < b;
    });
    return order;
  };
  EXPECT_EQ(ranking(pe), ranking(pw));

  // Cross-check on the exact engine: fused-wide vs exact density-matrix
  // distributions rank outcomes identically.
  cs::DensityMatrixEngine a(n), b(n);
  exact.execute(a);
  wide.execute(b);
  EXPECT_EQ(ranking(a.probabilities()), ranking(b.probabilities()));
}

TEST(NoiseProgram, FusedWideEmitsDenseWideOps) {
  // A coherent-dominated model (stochastic channels off) collapses whole
  // gate runs between CX barriers; the result must actually contain dense
  // two-qubit tape ops, not just re-emitted 1q gates.
  cn::NoiseModel m = line_model(4, 401);
  m.toggles().decoherence = false;
  m.toggles().depolarizing = false;
  m.toggles().prep = false;
  m.toggles().readout = false;
  const cc::Circuit c = random_basis_circuit(4, 50, 77);
  const cn::NoiseProgram exact = cn::lower(m, c);
  const cn::NoiseProgram wide = cn::fused_wide(exact);
  std::size_t dense = 0;
  for (std::size_t i = 0; i < wide.size(); ++i)
    dense += wide.op(i).kind == cn::TapeOpKind::kUnitary2q ||
             wide.op(i).kind == cn::TapeOpKind::kUnitary3q;
  EXPECT_GT(dense, 0u);
  EXPECT_LT(wide.size(), cn::fused(exact).size())
      << "wide fusion should beat gate fusion on coherent tapes";
}

TEST(NoiseProgram, FusedWidePreservesVerbatimPrefix) {
  const cn::NoiseModel m = line_model(4, 501);
  const cc::Circuit c = random_basis_circuit(4, 30, 91);
  const cn::NoiseProgram exact = cn::lower(m, c);

  const std::size_t cut = exact.op_end(c.size() / 2);
  const cn::NoiseProgram part = cn::fused_wide(exact, cut);
  ASSERT_TRUE(part.region_equal(exact, 0, cut));
  EXPECT_EQ(part.level(), cn::OptLevel::kFusedWide);

  cs::DensityMatrixEngine a(4), b(4);
  exact.execute(a);
  part.execute(b);
  EXPECT_LE(max_abs_diff(a.raw(), b.raw()), 1e-12);
}

TEST(NoiseProgram, FusionWidthKnobClampsAndSticks) {
  const int original = cn::fusion_width();
  cn::set_fusion_width(3);
  EXPECT_EQ(cn::fusion_width(), 3);
  cn::set_fusion_width(1);  // clamps up
  EXPECT_EQ(cn::fusion_width(), 2);
  cn::set_fusion_width(7);  // clamps down
  EXPECT_EQ(cn::fusion_width(), 3);
  cn::set_fusion_width(original);
}

TEST(NoiseProgram, FusionPreservesVerbatimPrefix) {
  const cn::NoiseModel m = line_model(4, 7);
  const cc::Circuit c = random_basis_circuit(4, 30, 21);
  const cn::NoiseProgram exact = cn::lower(m, c);

  const std::size_t cut = exact.op_end(c.size() / 2);
  const cn::NoiseProgram part = cn::fused(exact, cut);
  ASSERT_TRUE(part.region_equal(exact, 0, cut));
  EXPECT_EQ(part.level(), cn::OptLevel::kFused);

  // Running the fused-suffix tape end-to-end stays within tolerance.
  cs::DensityMatrixEngine a(4), b(4);
  exact.execute(a);
  part.execute(b);
  EXPECT_LE(max_abs_diff(a.raw(), b.raw()), 1e-12);
}

TEST(NoiseProgram, SplicedLoweringMatchesFullLoweringBitExactly) {
  const cn::NoiseModel m = line_model(5, 13);
  const cc::Circuit base = random_basis_circuit(5, 40, 17);
  const cn::NoiseProgram base_tape = cn::lower(m, base, true);

  const std::vector<std::size_t> eligible =
      charter::core::reversible_ops(base, true);
  ASSERT_GE(eligible.size(), 10u);
  for (const std::size_t g :
       {eligible.front(), eligible[eligible.size() / 2], eligible.back()}) {
    const cc::Circuit derived =
        charter::core::insert_reversed_pairs(base, g, 3, true);
    const auto spliced = cn::lower_spliced(m, base, base_tape, derived, g + 1);
    ASSERT_TRUE(spliced.has_value()) << "gate " << g;
    const cn::NoiseProgram full = cn::lower(m, derived);
    ASSERT_EQ(spliced->size(), full.size());
    EXPECT_TRUE(spliced->region_equal(full, 0, full.size()));
    EXPECT_EQ(spliced->fingerprint(), full.fingerprint());
  }
}

TEST(NoiseProgram, SpliceRejectsOverClaimedPrefix) {
  const cn::NoiseModel m = line_model(3, 19);
  const cc::Circuit base = random_basis_circuit(3, 20, 23);
  const cn::NoiseProgram base_tape = cn::lower(m, base, true);

  // A circuit whose claimed prefix diverges (different first gate) must be
  // rejected rather than resumed.
  cc::Circuit other(3);
  other.x(0);
  for (std::size_t i = 1; i < base.size(); ++i) other.append(base.op(i));
  EXPECT_FALSE(cn::lower_spliced(m, base, base_tape, other, 5).has_value());

  // Without resume records there is nothing to splice from.
  const cn::NoiseProgram bare = cn::lower(m, base, false);
  EXPECT_FALSE(cn::lower_spliced(m, base, bare, base, 5).has_value());
}

TEST(NoiseProgram, FingerprintsSeparateLevelsAndCircuits) {
  const cn::NoiseModel m = line_model(4, 29);
  const cc::Circuit c1 = random_basis_circuit(4, 25, 31);
  cc::Circuit c2 = c1;
  c2.x(0);

  const cn::NoiseProgram exact = cn::lower(m, c1);
  const cn::NoiseProgram again = cn::lower(m, c1);
  const cn::NoiseProgram fused = cn::fused(exact);
  const cn::NoiseProgram wide2 = cn::fused_wide(exact, 0, 2);
  const cn::NoiseProgram wide3 = cn::fused_wide(exact, 0, 3);
  const cn::NoiseProgram other = cn::lower(m, c2);

  EXPECT_EQ(exact.fingerprint(), again.fingerprint());
  EXPECT_NE(exact.fingerprint(), fused.fingerprint());
  EXPECT_NE(exact.fingerprint(), wide2.fingerprint());
  EXPECT_NE(fused.fingerprint(), wide2.fingerprint());
  EXPECT_NE(wide2.fingerprint(), wide3.fingerprint());
  EXPECT_NE(exact.fingerprint(), other.fingerprint());
  EXPECT_NE(exact.fingerprint()[0], cn::tape_schema_fingerprint()[0]);
}

TEST(NoiseProgram, KrausTapeOpMatchesDirectEngineCall) {
  // Hand-built tape with a generic Kraus channel: interpretation must equal
  // the direct engine call (the analyzer never emits kraus ops today, but
  // custom channels enter through this path).
  const double p = 0.2;
  charter::math::Mat2 k0, k1;
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - p);
  k1(0, 1) = std::sqrt(p);
  const std::array<charter::math::Mat2, 2> kraus = {k0, k1};

  cn::NoiseProgram tape(1);
  tape.append_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0})),
                         0);
  tape.append_kraus_1q(kraus, 0);

  cs::DensityMatrixEngine direct(1), taped(1);
  direct.apply_unitary_1q(
      cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0})), 0);
  direct.apply_kraus_1q(kraus, 0);
  tape.execute(taped);

  EXPECT_EQ(max_abs_diff(direct.raw(), taped.raw()), 0.0);
  // Amplitude damping after X: P(0) = p.
  EXPECT_NEAR(taped.probabilities()[0], p, 1e-12);
}

TEST(NoiseProgram, ExecuteRejectsWidthMismatch) {
  const cn::NoiseModel m = line_model(3, 41);
  const cc::Circuit c = random_basis_circuit(3, 10, 43);
  const cn::NoiseProgram tape = cn::lower(m, c);
  cs::DensityMatrixEngine narrow(2);
  EXPECT_THROW(tape.execute(narrow), charter::InvalidArgument);
}

// ---------------------------------------------------------------------------
// Serialization ("CHP\2" tapes, "CHS\1" snapshots) — the unit the
// multi-process sweep ships to worker children.
// ---------------------------------------------------------------------------

namespace {

/// Round-trips \p tape through the byte format and checks losslessness:
/// same shape, same fingerprint, bit-identical execution.
void expect_lossless_round_trip(const cn::NoiseProgram& tape, int n) {
  const std::vector<std::uint8_t> bytes = cn::serialize_tape(tape);
  const cn::NoiseProgram back = cn::deserialize_tape(bytes);

  EXPECT_EQ(back.num_qubits(), tape.num_qubits());
  EXPECT_EQ(back.size(), tape.size());
  EXPECT_EQ(back.fingerprint(), tape.fingerprint());

  cs::DensityMatrixEngine a(n), b(n);
  tape.execute(a);
  back.execute(b);
  EXPECT_EQ(max_abs_diff(a.raw(), b.raw()), 0.0);
}

}  // namespace

TEST(TapeSerialization, RoundTripsEveryOptLevelLosslessly) {
  const cn::NoiseModel m = line_model(4, 17);
  const cc::Circuit c = random_basis_circuit(4, 50, 23);
  const cn::NoiseProgram exact = cn::lower(m, c);
  // exact covers the 1q/2q primitive ops; fused adds diag payloads; wide
  // fusion adds the dense kUnitary2q (mats4) and kUnitary3q (mats8)
  // payload arrays.
  expect_lossless_round_trip(exact, 4);
  expect_lossless_round_trip(cn::fused(exact), 4);
  expect_lossless_round_trip(cn::fused_wide(exact, 0, 2), 4);
  expect_lossless_round_trip(cn::fused_wide(exact, 0, 3), 4);
}

TEST(TapeSerialization, RoundTripsKrausPayloads) {
  // The analyzer never emits kraus ops; build one by hand so the
  // kraus_sets side arrays are exercised too.
  const double p = 0.125;
  charter::math::Mat2 k0, k1;
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - p);
  k1(0, 1) = std::sqrt(p);
  const std::array<charter::math::Mat2, 2> kraus = {k0, k1};
  cn::NoiseProgram tape(2);
  tape.append_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0})),
                         0);
  tape.append_kraus_1q(kraus, 0);
  expect_lossless_round_trip(tape, 2);
}

TEST(TapeSerialization, ResumeInfoIsDroppedByDesign) {
  const cn::NoiseModel m = line_model(3, 7);
  const cc::Circuit c = random_basis_circuit(3, 20, 9);
  const cn::NoiseProgram tape = cn::lower(m, c, true);
  ASSERT_TRUE(tape.has_resume_info());
  const cn::NoiseProgram back =
      cn::deserialize_tape(cn::serialize_tape(tape));
  // The parent does all splicing before shipping; the interpreter never
  // reads ResumeInfo, so the wire format omits it.
  EXPECT_FALSE(back.has_resume_info());
}

TEST(TapeSerialization, RejectsMalformedBlobsAsStructuredErrors) {
  const cn::NoiseModel m = line_model(3, 29);
  const cc::Circuit c = random_basis_circuit(3, 15, 31);
  const std::vector<std::uint8_t> good =
      cn::serialize_tape(cn::fused_wide(cn::lower(m, c)));

  // Empty and truncated-at-every-prefix blobs.
  EXPECT_THROW(cn::deserialize_tape({}), charter::InvalidArgument);
  for (std::size_t len : {std::size_t{1}, std::size_t{3}, std::size_t{8},
                          good.size() / 2, good.size() - 1}) {
    const std::vector<std::uint8_t> cut(good.begin(),
                                        good.begin() + static_cast<long>(len));
    EXPECT_THROW(cn::deserialize_tape(cut), charter::InvalidArgument)
        << "truncated to " << len << " bytes";
  }

  // Wrong magic and wrong version.
  std::vector<std::uint8_t> bad = good;
  bad[0] ^= 0xFF;
  EXPECT_THROW(cn::deserialize_tape(bad), charter::InvalidArgument);
  bad = good;
  bad[4] ^= 0x01;  // version u32 low byte
  EXPECT_THROW(cn::deserialize_tape(bad), charter::InvalidArgument);

  // Any single flipped byte fails the trailing checksum (or a field
  // validation) — fuzz a spread of positions deterministically.
  charter::util::Rng rng(2022);
  for (int i = 0; i < 64; ++i) {
    bad = good;
    const std::size_t at = rng.uniform_int(bad.size());
    bad[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
    EXPECT_THROW(cn::deserialize_tape(bad), charter::InvalidArgument)
        << "flipped byte " << at;
  }
}

TEST(TapeSerialization, RandomizedRoundTripsStayLossless) {
  // Fuzz-ish sweep: many random circuits, widths, and opt levels.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const int n = 2 + static_cast<int>(seed % 3);
    const cn::NoiseModel m = line_model(n, seed * 13);
    const cc::Circuit c =
        random_basis_circuit(n, 10 + static_cast<int>(seed) * 7, seed * 37);
    const cn::NoiseProgram exact = cn::lower(m, c);
    expect_lossless_round_trip(exact, n);
    expect_lossless_round_trip(seed % 2 == 0 ? cn::fused(exact)
                                             : cn::fused_wide(exact),
                               n);
  }
}

TEST(SnapshotSerialization, RoundTripsEngineStateBitExactly) {
  const cn::NoiseModel m = line_model(3, 3);
  const cc::Circuit c = random_basis_circuit(3, 25, 5);
  cs::DensityMatrixEngine engine(3);
  cn::lower(m, c).execute(engine);

  std::vector<charter::math::cplx> state;
  engine.save_state(state);
  const std::vector<std::uint8_t> bytes = cs::serialize_snapshot(3, state);
  const cs::SnapshotData back = cs::deserialize_snapshot(bytes);

  ASSERT_EQ(back.num_qubits, 3);
  ASSERT_EQ(back.state.size(), state.size());
  EXPECT_EQ(max_abs_diff(back.state, state), 0.0);

  // A second engine restored from the blob continues identically.
  cs::DensityMatrixEngine restored(3);
  restored.load_state(back.state);
  EXPECT_EQ(max_abs_diff(restored.raw(), engine.raw()), 0.0);
}

TEST(SnapshotSerialization, RejectsMalformedBlobs) {
  const std::vector<charter::math::cplx> state(16, {0.25, 0.0});
  const std::vector<std::uint8_t> good = cs::serialize_snapshot(2, state);

  EXPECT_THROW(cs::deserialize_snapshot({}), charter::InvalidArgument);
  std::vector<std::uint8_t> bad(good.begin(), good.end() - 1);
  EXPECT_THROW(cs::deserialize_snapshot(bad), charter::InvalidArgument);
  bad = good;
  bad[2] = 'X';  // magic
  EXPECT_THROW(cs::deserialize_snapshot(bad), charter::InvalidArgument);
  bad = good;
  bad[4] ^= 0x02;  // version
  EXPECT_THROW(cs::deserialize_snapshot(bad), charter::InvalidArgument);
  bad = good;
  bad[good.size() / 2] ^= 0x10;  // payload byte: checksum must catch it
  EXPECT_THROW(cs::deserialize_snapshot(bad), charter::InvalidArgument);
}
