// Golden-file regression suite: full CharterReports for three seeded
// circuits (QFT, VQE ansatz, random basis-gate) are pinned as JSON fixtures
// and replayed to 1e-12, so a future change that silently shifts scores,
// distributions, or the exec layer's checkpoint/cache behavior fails here
// instead of shipping.  Scores are engine-exact (shots = 0), so the 1e-12
// budget only absorbs libm/FP-contraction differences across toolchains —
// any algorithmic change lands far outside it.
//
// Regenerating (after a *deliberate* output change): run this binary with
// CHARTER_REGEN_FIXTURES=1 in the environment and commit the rewritten
// files under tests/fixtures/, explaining in the commit why the outputs
// moved.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "algos/algorithms.hpp"
#include "backend/backend.hpp"
#include "core/analyzer.hpp"
#include "core/report_io.hpp"
#include "exec/cache.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

#ifndef CHARTER_FIXTURE_DIR
#define CHARTER_FIXTURE_DIR "tests/fixtures"
#endif

namespace ca = charter::algos;
namespace cb = charter::backend;
namespace cc = charter::circ;
namespace co = charter::core;
namespace ex = charter::exec;

namespace {

constexpr double kTolerance = 1e-12;

/// Seeded random circuit over the device basis gates (RZ/SX/X/CX).
cc::Circuit random_basis_circuit(int n, int gates, std::uint64_t seed) {
  charter::util::Rng rng(seed);
  cc::Circuit c(n);
  const auto qubit = [&] { return static_cast<int>(rng.uniform_int(n)); };
  for (int k = 0; k < gates; ++k) {
    switch (rng.uniform_int(4)) {
      case 0: c.rz(qubit(), rng.uniform(-3.0, 3.0)); break;
      case 1: c.sx(qubit()); break;
      case 2: c.x(qubit()); break;
      default: {
        const int a = qubit();
        int b = qubit();
        while (b == a) b = qubit();
        c.cx(a, b);
        break;
      }
    }
  }
  return c;
}

/// The pinned analysis configuration: engine-exact distributions (no shot
/// sampling cliffs inside the tolerance), checkpointing and caching on, a
/// gate cap to keep replays fast.  Reports are thread-count-independent, so
/// the fixtures carry no threads field.
co::CharterOptions golden_options() {
  co::CharterOptions options;
  options.reversals = 2;
  options.max_gates = 10;
  options.run.shots = 0;
  options.run.seed = 2022;
  return options;
}

co::GoldenReport analyze_golden(const cc::Circuit& logical) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = backend.compile(logical);
  ex::RunCache::global().clear();
  const co::CharterAnalyzer analyzer(backend, golden_options());
  co::GoldenReport out;
  out.report = analyzer.analyze(program);
  out.exec = out.report.exec_stats;
  // Structural (un-pinned) property while we are here: a re-analysis is
  // served entirely from the run cache.
  const co::CharterReport warm = analyzer.analyze(program);
  EXPECT_EQ(warm.exec_stats.cache_hits, warm.exec_stats.jobs);
  ex::RunCache::global().clear();
  return out;
}

std::string fixture_path(const std::string& name) {
  return std::string(CHARTER_FIXTURE_DIR) + "/" + name + ".json";
}

void check_against_fixture(const std::string& name,
                           const cc::Circuit& logical) {
  const co::GoldenReport actual = analyze_golden(logical);

  if (std::getenv("CHARTER_REGEN_FIXTURES") != nullptr) {
    std::ofstream out(fixture_path(name));
    ASSERT_TRUE(out.good()) << "cannot write " << fixture_path(name);
    out << co::report_to_json(actual.report, actual.exec);
    GTEST_SKIP() << "regenerated " << fixture_path(name);
  }

  std::ifstream in(fixture_path(name));
  ASSERT_TRUE(in.good()) << "missing fixture " << fixture_path(name)
                         << " (run with CHARTER_REGEN_FIXTURES=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const co::GoldenReport expected = co::report_from_json(buffer.str());

  EXPECT_EQ(actual.report.total_gates, expected.report.total_gates);
  EXPECT_EQ(actual.report.eligible_gates, expected.report.eligible_gates);
  EXPECT_EQ(actual.report.analyzed_gates, expected.report.analyzed_gates);

  ASSERT_EQ(actual.report.original_distribution.size(),
            expected.report.original_distribution.size());
  for (std::size_t i = 0; i < expected.report.original_distribution.size();
       ++i)
    EXPECT_NEAR(actual.report.original_distribution[i],
                expected.report.original_distribution[i], kTolerance)
        << "outcome " << i;

  ASSERT_EQ(actual.report.impacts.size(), expected.report.impacts.size());
  for (std::size_t k = 0; k < expected.report.impacts.size(); ++k) {
    const co::GateImpact& a = actual.report.impacts[k];
    const co::GateImpact& e = expected.report.impacts[k];
    EXPECT_EQ(a.op_index, e.op_index) << "impact " << k;
    EXPECT_EQ(a.kind, e.kind) << "impact " << k;
    EXPECT_EQ(a.layer, e.layer) << "impact " << k;
    EXPECT_EQ(a.num_qubits, e.num_qubits) << "impact " << k;
    for (int q = 0; q < e.num_qubits; ++q)
      EXPECT_EQ(a.qubits[static_cast<std::size_t>(q)],
                e.qubits[static_cast<std::size_t>(q)])
          << "impact " << k;
    EXPECT_NEAR(a.tvd, e.tvd, kTolerance) << "impact " << k;
  }

  // The ranking itself — the analyzer's one-line deliverable — must match
  // exactly, not just within tolerance.
  const auto actual_ranked = actual.report.sorted_by_impact();
  const auto expected_ranked = expected.report.sorted_by_impact();
  for (std::size_t k = 0; k < expected_ranked.size(); ++k)
    EXPECT_EQ(actual_ranked[k].op_index, expected_ranked[k].op_index)
        << "rank " << k;

  // Execution diagnostics are part of the pinned surface: a checkpoint plan
  // that silently stops engaging is a perf regression this catches.
  EXPECT_EQ(actual.exec.jobs, expected.exec.jobs);
  EXPECT_EQ(actual.exec.cache_hits, expected.exec.cache_hits);
  EXPECT_EQ(actual.exec.checkpointed, expected.exec.checkpointed);
  EXPECT_EQ(actual.exec.trajectory_checkpointed,
            expected.exec.trajectory_checkpointed);
  EXPECT_EQ(actual.exec.full_runs, expected.exec.full_runs);
  EXPECT_EQ(actual.exec.checkpoint_fallbacks,
            expected.exec.checkpoint_fallbacks);
}

}  // namespace

TEST(ReportIo, RoundTripsThroughJson) {
  const co::GoldenReport golden = analyze_golden(ca::qft(3, 0));
  const std::string json = co::report_to_json(golden.report, golden.exec);
  const co::GoldenReport back = co::report_from_json(json);

  ASSERT_EQ(back.report.impacts.size(), golden.report.impacts.size());
  for (std::size_t k = 0; k < golden.report.impacts.size(); ++k) {
    EXPECT_EQ(back.report.impacts[k].op_index,
              golden.report.impacts[k].op_index);
    EXPECT_EQ(back.report.impacts[k].kind, golden.report.impacts[k].kind);
    // %.17g round-trips doubles exactly.
    EXPECT_EQ(back.report.impacts[k].tvd, golden.report.impacts[k].tvd);
  }
  ASSERT_EQ(back.report.original_distribution.size(),
            golden.report.original_distribution.size());
  for (std::size_t i = 0; i < golden.report.original_distribution.size(); ++i)
    EXPECT_EQ(back.report.original_distribution[i],
              golden.report.original_distribution[i]);
  EXPECT_EQ(back.exec.jobs, golden.exec.jobs);
  EXPECT_EQ(back.exec.checkpointed, golden.exec.checkpointed);
}

TEST(ReportIo, RejectsMalformedAndMismatchedSchema) {
  EXPECT_THROW(co::report_from_json("not json"), charter::InvalidArgument);
  EXPECT_THROW(co::report_from_json("{\"schema\":999}"),
               charter::InvalidArgument);
}

TEST(GoldenReports, Qft3) { check_against_fixture("qft3", ca::qft(3, 0)); }

TEST(GoldenReports, Vqe4) {
  check_against_fixture("vqe4", ca::vqe_ansatz(4, 3, 31));
}

TEST(GoldenReports, RandomBasis5) {
  check_against_fixture("random_basis5",
                        random_basis_circuit(5, 40, 0x5eedULL));
}

TEST(GoldenReports, Qaoa5P1) {
  check_against_fixture("qaoa5p1", ca::qaoa_maxcut(5, 1, 21));
}

TEST(GoldenReports, Grover3) {
  check_against_fixture("grover3", ca::grover(3, 5));
}
