// Cross-module integration tests: every paper benchmark must flow through
// the full pipeline (generate -> transpile -> execute -> analyze) with
// coherent results; analyzer runs must be reproducible; and the charter
// score must behave like a criticality measure end to end.

#include <gtest/gtest.h>

#include <cmath>

#include "algos/algorithms.hpp"
#include "algos/registry.hpp"
#include "backend/backend.hpp"
#include "sim/statevector.hpp"
#include "core/analyzer.hpp"
#include "core/reversal.hpp"
#include "stats/stats.hpp"
#include "util/error.hpp"

namespace ca = charter::algos;
namespace cb = charter::backend;
namespace cc = charter::circ;
namespace co = charter::core;
using cc::GateKind;

namespace {

cb::FakeBackend backend_for(const ca::AlgoSpec& spec) {
  return spec.qubits <= 7 ? cb::FakeBackend::lagos()
                          : cb::FakeBackend::guadalupe();
}

}  // namespace

// Every paper config flows through compile + ideal + schedule coherently.
class PaperBenchmarkPipeline
    : public ::testing::TestWithParam<std::string> {};

TEST_P(PaperBenchmarkPipeline, CompilesAndPreservesIdealSemantics) {
  const ca::AlgoSpec spec = ca::find_benchmark(GetParam());
  const cb::FakeBackend backend = backend_for(spec);
  const cc::Circuit logical = spec.build();
  const cb::CompiledProgram prog = backend.compile(logical);

  // Physical circuit is basis-only and respects the topology.
  for (const cc::Gate& g : prog.physical.ops()) {
    ASSERT_TRUE(cc::is_basis_gate(g.kind) || g.kind == GateKind::BARRIER);
    if (g.kind == GateKind::CX)
      ASSERT_TRUE(backend.topology().connected(g.qubits[0], g.qubits[1]));
  }

  // Compiled ideal output == logical ideal output.
  const auto want = charter::sim::ideal_probabilities(logical);
  const auto got = backend.ideal(prog);
  EXPECT_LT(charter::stats::tvd(want, got), 1e-9);

  // The schedule is physical: positive makespan, gates inside it.
  EXPECT_GT(backend.duration_ns(prog), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, PaperBenchmarkPipeline,
    ::testing::Values("hlf5", "qft3", "qft7", "adder4", "adder9", "mult5",
                      "qaoa5", "vqe4", "heis4", "tfim4", "xy4"),
    [](const auto& info) { return info.param; });

// Wide configs (trajectory engine territory) at least compile and run a few
// trajectories end to end.
TEST(PaperBenchmarkPipelineWide, SixteenQubitTfimRuns) {
  const ca::AlgoSpec spec = ca::find_benchmark("tfim16");
  const cb::FakeBackend backend = backend_for(spec);
  const cb::CompiledProgram prog = backend.compile(spec.build());
  cb::RunOptions run;
  run.shots = 1024;
  run.trajectories = 2;
  run.seed = 5;
  const auto probs = backend.run(prog, run);
  double total = 0.0;
  for (const double p : probs) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  EXPECT_EQ(probs.size(), std::size_t{1} << 16);
}

TEST(Integration, AnalyzerIsReproducible) {
  const ca::AlgoSpec spec = ca::find_benchmark("qft3");
  const cb::FakeBackend backend = backend_for(spec);
  const cb::CompiledProgram prog = backend.compile(spec.build());
  co::CharterOptions opts;
  opts.run.shots = 2048;
  opts.run.seed = 77;
  opts.run.drift = 0.05;
  const co::CharterAnalyzer analyzer(backend, opts);
  const auto a = analyzer.analyze(prog);
  const auto b = analyzer.analyze(prog);
  ASSERT_EQ(a.impacts.size(), b.impacts.size());
  for (std::size_t i = 0; i < a.impacts.size(); ++i)
    EXPECT_DOUBLE_EQ(a.impacts[i].tvd, b.impacts[i].tvd);
}

TEST(Integration, ImpactsRespondToCalibrationQuality) {
  // The same program on the standard device and a much cleaner copy: mean
  // impact must shrink on the cleaner device.  (The comparison runs toward
  // the clean side because impact *saturates* on very bad devices — once
  // the output sits near the noise fixed point, extra amplified error
  // barely moves it.)
  const ca::AlgoSpec spec = ca::find_benchmark("qft3");
  cb::FakeBackend standard = cb::FakeBackend::lagos(7);
  cb::FakeBackend clean = cb::FakeBackend::lagos(7);
  for (const auto& [a, b] : clean.topology().edges()) {
    auto& e = clean.model().edge(a, b);
    e.cx_depol *= 0.1;
    e.cx_zz_angle *= 0.1;
    e.static_zz_rate *= 0.1;
    e.drive_zz_rate *= 0.1;
  }
  for (int q = 0; q < 7; ++q) {
    auto& c = clean.model().qubit(q);
    c.t1_ns *= 10.0;
    c.t2_ns *= 10.0;
    for (GateKind k : {GateKind::SX, GateKind::X}) {
      clean.model().gate_1q(k, q).depol *= 0.1;
      clean.model().gate_1q(k, q).overrot_frac *= 0.1;
    }
  }

  co::CharterOptions opts;
  opts.run.shots = 0;
  const cb::CompiledProgram prog_std = standard.compile(spec.build());
  const cb::CompiledProgram prog_clean = clean.compile(spec.build());
  const double mean_std = charter::stats::mean(
      co::CharterAnalyzer(standard, opts).analyze(prog_std).scores());
  const double mean_clean = charter::stats::mean(
      co::CharterAnalyzer(clean, opts).analyze(prog_clean).scores());
  EXPECT_GT(mean_std, 1.2 * mean_clean);
}

TEST(Integration, DeeperCircuitsAccumulateMoreError) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  cb::RunOptions run;
  run.shots = 0;
  double prev_err = -1.0;
  for (const int steps : {1, 4, 10}) {
    const cb::CompiledProgram prog =
        backend.compile(ca::tfim(4, steps));
    const double err = charter::stats::tvd(backend.run(prog, run),
                                           backend.ideal(prog));
    EXPECT_GT(err, prev_err);
    prev_err = err;
  }
}

TEST(Integration, ReversalOverheadScalesWithReversals) {
  // The reversed circuit for a CX with r pairs is ~2r CX longer; its
  // schedule must be correspondingly longer.
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 1));
  std::size_t cx_index = 0;
  for (std::size_t i = 0; i < prog.physical.size(); ++i)
    if (prog.physical.op(i).kind == GateKind::CX) {
      cx_index = i;
      break;
    }
  const double base = backend.duration_ns(prog);
  double prev = base;
  for (const int r : {1, 3, 7}) {
    cb::CompiledProgram rev = prog;
    rev.physical = co::insert_reversed_pairs(prog.physical, cx_index, r);
    const double dur = backend.duration_ns(rev);
    EXPECT_GT(dur, prev);
    prev = dur;
  }
  EXPECT_GT(prev, base + 13 * 250.0);  // 14 extra CX at >= 250 ns
}

TEST(Integration, RzShareMatchesPaperRange) {
  // Across the small paper configs, RZ gates should be roughly 20-55% of
  // ops after transpilation (Table IV's premise for run savings).
  for (const char* key : {"hlf5", "qft3", "adder4", "qaoa5", "tfim4"}) {
    const ca::AlgoSpec spec = ca::find_benchmark(key);
    const cb::FakeBackend backend = backend_for(spec);
    const cb::CompiledProgram prog = backend.compile(spec.build());
    const double total = static_cast<double>(prog.physical.count_if(
        [](const cc::Gate& g) { return g.kind != GateKind::BARRIER; }));
    const double rz =
        static_cast<double>(prog.physical.count_kind(GateKind::RZ));
    EXPECT_GT(rz / total, 0.15) << key;
    EXPECT_LT(rz / total, 0.60) << key;
  }
}

TEST(Integration, InputReversalSemanticsSurviveCompilation) {
  // Input-prep tags survive the full pipeline and the block reversal of the
  // compiled circuit keeps the ideal output intact.
  for (const char* key : {"qft3", "adder4", "xy4"}) {
    const ca::AlgoSpec spec = ca::find_benchmark(key);
    const cb::FakeBackend backend = backend_for(spec);
    const cb::CompiledProgram prog = backend.compile(spec.build());
    ASSERT_FALSE(prog.physical.ops_with_flag(cc::kFlagInputPrep).empty())
        << key;
    cb::CompiledProgram rev = prog;
    rev.physical = co::insert_input_block_reversal(prog.physical, 5);
    EXPECT_LT(charter::stats::tvd(backend.ideal(prog), backend.ideal(rev)),
              1e-9)
        << key;
  }
}
