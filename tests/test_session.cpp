// Tests for the public charter::Session facade (include/charter/): config
// validation, async job lifecycle, monotone progress, deterministic impact
// streaming, cooperative cancellation, custom Backend subclasses, and the
// acceptance contract that a Session report is bit-identical to driving
// core::CharterAnalyzer directly at every worker-pool width.

#include <charter/charter.hpp>

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace {

namespace cb = charter::backend;
namespace cc = charter::circ;
namespace co = charter::core;
namespace ex = charter::exec;

co::CharterOptions direct_options(int threads) {
  co::CharterOptions o;
  o.reversals = 3;
  o.run.shots = 4096;
  o.run.seed = 2022;
  o.exec.threads = threads;
  return o;
}

charter::SessionConfig session_config(int threads) {
  charter::SessionConfig config =
      charter::SessionConfig().reversals(3).shots(4096).seed(2022);
  config.execution().threads(threads);
  return config;
}

charter::SessionConfig uncached_config(int threads) {
  charter::SessionConfig config = session_config(threads);
  config.execution().caching(false);
  return config;
}

cb::CompiledProgram qft3_program(const cb::FakeBackend& backend) {
  return backend.compile(charter::algos::find_benchmark("qft3").build());
}

void expect_reports_identical(const co::CharterReport& a,
                              const co::CharterReport& b,
                              const std::string& label) {
  ASSERT_EQ(a.impacts.size(), b.impacts.size()) << label;
  ASSERT_EQ(a.original_distribution.size(), b.original_distribution.size())
      << label;
  for (std::size_t i = 0; i < a.original_distribution.size(); ++i)
    EXPECT_EQ(a.original_distribution[i], b.original_distribution[i])
        << label << " outcome " << i;
  for (std::size_t k = 0; k < a.impacts.size(); ++k) {
    EXPECT_EQ(a.impacts[k].op_index, b.impacts[k].op_index) << label;
    EXPECT_EQ(a.impacts[k].tvd, b.impacts[k].tvd) << label << " gate " << k;
  }
  EXPECT_EQ(a.exec_stats.jobs, b.exec_stats.jobs) << label;
  EXPECT_EQ(a.exec_stats.cache_hits, b.exec_stats.cache_hits) << label;
  EXPECT_EQ(a.exec_stats.checkpointed, b.exec_stats.checkpointed) << label;
  EXPECT_EQ(a.exec_stats.full_runs, b.exec_stats.full_runs) << label;
}

// ---------------------------------------------------------------------------
// SessionConfig validation
// ---------------------------------------------------------------------------

TEST(SessionConfig, DefaultIsValid) {
  EXPECT_TRUE(charter::SessionConfig().validate().empty());
}

TEST(SessionConfig, ReportsEveryProblemActionably) {
  charter::SessionConfig bad = charter::SessionConfig()
                                   .reversals(0)
                                   .shots(-1)
                                   .trajectories(0)
                                   .drift(1.5);
  bad.execution().threads(-2);
  const std::vector<std::string> errors = bad.validate();
  ASSERT_EQ(errors.size(), 5u);
  // Each message names the knob and the accepted range — actionable, not
  // just "invalid config".
  EXPECT_NE(errors[0].find("reversals"), std::string::npos);
  EXPECT_NE(errors[1].find("shots"), std::string::npos);
  EXPECT_NE(errors[2].find("trajectories"), std::string::npos);
  EXPECT_NE(errors[3].find("drift"), std::string::npos);
  EXPECT_NE(errors[4].find("threads"), std::string::npos);
}

TEST(SessionConfig, FusedTrajectoryCombinationIsRejected) {
  charter::SessionConfig config =
      charter::SessionConfig().engine(cb::EngineKind::kTrajectory);
  config.execution().fused(true);
  const auto errors = config.validate();
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_NE(errors[0].find("fused"), std::string::npos);
}

TEST(SessionConfig, SessionConstructorThrowsWithJoinedErrors) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  try {
    charter::Session session(backend,
                             charter::SessionConfig().reversals(-1));
    FAIL() << "expected InvalidArgument";
  } catch (const charter::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("reversals"), std::string::npos);
  }
}

TEST(SessionConfig, ResolvedMapsLosslessly) {
  charter::SessionConfig config = charter::SessionConfig()
                                      .reversals(7)
                                      .skip_rz(false)
                                      .isolate(false)
                                      .max_gates(9)
                                      .validation(true)
                                      .shots(123)
                                      .engine(cb::EngineKind::kTrajectory)
                                      .trajectories(11)
                                      .seed(99)
                                      .drift(0.05);
  config.execution()
      .common_random_numbers(true)
      .checkpointing(false)
      .caching(false)
      .checkpoint_memory_bytes(1 << 20)
      .threads(3);
  const co::CharterOptions o = config.resolved();
  EXPECT_EQ(o.reversals, 7);
  EXPECT_FALSE(o.skip_rz);
  EXPECT_FALSE(o.isolate);
  EXPECT_EQ(o.max_gates, 9);
  EXPECT_TRUE(o.compute_validation);
  EXPECT_TRUE(o.common_random_numbers);
  EXPECT_EQ(o.run.shots, 123);
  EXPECT_EQ(o.run.engine, cb::EngineKind::kTrajectory);
  EXPECT_EQ(o.run.trajectories, 11);
  EXPECT_EQ(o.run.seed, 99u);
  EXPECT_DOUBLE_EQ(o.run.drift, 0.05);
  EXPECT_FALSE(o.exec.checkpointing);
  EXPECT_FALSE(o.exec.caching);
  EXPECT_EQ(o.exec.checkpoint_memory_bytes, std::size_t{1} << 20);
  EXPECT_EQ(o.exec.threads, 3);
}

// ---------------------------------------------------------------------------
// Acceptance: Session == direct CharterAnalyzer, at every thread count.
// ---------------------------------------------------------------------------

TEST(Session, BitIdenticalToDirectAnalyzerAcrossThreadCounts) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  ex::RunCache::global().clear();
  const co::CharterAnalyzer analyzer(backend, direct_options(1));
  const co::CharterReport direct = analyzer.analyze(program);

  for (const int threads : {1, 2, 8}) {
    ex::RunCache::global().clear();
    charter::Session session(backend, session_config(threads));
    const co::CharterReport report = session.analyze(program);
    expect_reports_identical(direct, report,
                             "threads=" + std::to_string(threads));
  }
  ex::RunCache::global().clear();
}

TEST(Session, SubmitReportsMatchInputImpactToo) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  ex::RunCache::global().clear();
  const co::CharterAnalyzer analyzer(backend, direct_options(2));
  const double direct = analyzer.input_impact(program);

  ex::RunCache::global().clear();
  charter::Session session(backend, session_config(2));
  const charter::JobHandle job = session.submit_input_impact(program);
  const charter::JobResult& result = job.wait();
  EXPECT_EQ(result.status, charter::JobStatus::kDone);
  EXPECT_EQ(result.kind, charter::JobKind::kInputImpact);
  EXPECT_EQ(result.input_tvd, direct);
  ex::RunCache::global().clear();
}

// ---------------------------------------------------------------------------
// Progress and impact streaming
// ---------------------------------------------------------------------------

TEST(Session, ProgressIsMonotoneAndCompletes) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  ex::RunCache::global().clear();
  charter::Session session(backend, session_config(4));

  std::mutex mu;
  std::vector<charter::JobProgress> events;
  charter::JobCallbacks callbacks;
  callbacks.on_progress = [&](const charter::JobProgress& p) {
    const std::lock_guard<std::mutex> lock(mu);
    events.push_back(p);
  };
  const charter::JobHandle job = session.submit(program, callbacks);
  const charter::JobResult& result = job.wait();
  ASSERT_EQ(result.status, charter::JobStatus::kDone);

  ASSERT_FALSE(events.empty());
  // One event per run, strictly monotone, constant total, ends complete.
  const std::size_t total = events.front().total;
  EXPECT_EQ(total, result.report.analyzed_gates + 1);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].completed, i + 1);
    EXPECT_EQ(events[i].total, total);
  }
  EXPECT_EQ(events.back().completed, total);
  EXPECT_EQ(job.progress().completed, total);
  ex::RunCache::global().clear();
}

TEST(Session, ImpactsStreamInSubmissionOrder) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  ex::RunCache::global().clear();
  charter::Session session(backend, session_config(4));

  std::vector<co::GateImpact> streamed;  // coordinating thread: no lock
  charter::JobCallbacks callbacks;
  callbacks.on_impact = [&](const co::GateImpact& g) {
    streamed.push_back(g);
  };
  const co::CharterReport report =
      session.submit(program, callbacks).wait().report;

  ASSERT_EQ(streamed.size(), report.impacts.size());
  for (std::size_t k = 0; k < streamed.size(); ++k) {
    EXPECT_EQ(streamed[k].op_index, report.impacts[k].op_index);
    EXPECT_EQ(streamed[k].tvd, report.impacts[k].tvd);
    if (k > 0)  // deterministic submission order == ascending op index
      EXPECT_GT(streamed[k].op_index, streamed[k - 1].op_index);
  }
  ex::RunCache::global().clear();
}

// ---------------------------------------------------------------------------
// Cancellation
// ---------------------------------------------------------------------------

TEST(Session, CancellationMidSweepFreesWorkersAndReportsCancelled) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  ex::RunCache::global().clear();
  // caching off so the cancelled job's partial work cannot leak into the
  // follow-up job via the run cache; checkpointing off and a large
  // reversal count so every run costs whole milliseconds — the cancel
  // issued at run 2 must land while most of the sweep is still pending.
  charter::SessionConfig config = uncached_config(2).reversals(40);
  config.execution().checkpointing(false);
  charter::Session session(backend, config);

  charter::JobHandle job;
  std::atomic<bool> handle_ready{false};
  std::atomic<std::size_t> seen{0};
  charter::JobCallbacks callbacks;
  callbacks.on_progress = [&](const charter::JobProgress& p) {
    seen = p.completed;
    if (p.completed >= 2) {
      // The job may reach this callback before submit() has returned the
      // handle; spin until the main thread publishes it, then cancel from
      // inside the callback (a documented-legal call site).
      while (!handle_ready.load()) std::this_thread::yield();
      job.cancel();
    }
  };
  job = session.submit(program, callbacks);
  handle_ready.store(true);
  const charter::JobResult& result = job.wait();

  EXPECT_EQ(result.status, charter::JobStatus::kCancelled);
  EXPECT_EQ(job.status(), charter::JobStatus::kCancelled);
  // Cancelled mid-sweep: some runs finished, not all.
  EXPECT_GE(seen.load(), 2u);
  EXPECT_LT(job.progress().completed, job.progress().total);

  // The workers are free again: a fresh job on the same session completes.
  const charter::JobHandle followup = session.submit(program);
  const charter::JobResult& again = followup.wait();
  EXPECT_EQ(again.status, charter::JobStatus::kDone);
  EXPECT_FALSE(again.report.impacts.empty());
  ex::RunCache::global().clear();
}

TEST(Session, NoProgressAfterTerminalStatusIsObservable) {
  // Regression: on_progress used to race set_status — a callback already
  // past the status check could deliver *after* wait() had returned
  // kCancelled, surprising callers that tear their observer state down on
  // wait().  Callback delivery is now fenced: once a terminal status is
  // observable, no further progress arrives.
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  ex::RunCache::global().clear();
  charter::SessionConfig config = uncached_config(2).reversals(40);
  config.execution().checkpointing(false);
  charter::Session session(backend, config);

  // Repeat to give the (former) race a chance to fire.
  for (int round = 0; round < 5; ++round) {
    charter::JobHandle job;
    std::atomic<bool> handle_ready{false};
    std::atomic<bool> terminal_observed{false};
    std::atomic<bool> late_progress{false};
    charter::JobCallbacks callbacks;
    callbacks.on_progress = [&](const charter::JobProgress& p) {
      if (terminal_observed.load()) late_progress = true;
      if (p.completed >= 1) {
        while (!handle_ready.load()) std::this_thread::yield();
        job.cancel();
      }
    };
    job = session.submit(program, callbacks);
    handle_ready.store(true);
    const charter::JobResult& result = job.wait();
    terminal_observed.store(true);
    EXPECT_EQ(result.status, charter::JobStatus::kCancelled)
        << "round " << round;
    // Give any straggler callback time to (wrongly) deliver.
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_FALSE(late_progress.load())
        << "round " << round
        << ": on_progress fired after wait() returned kCancelled";
  }
  ex::RunCache::global().clear();
}

TEST(Session, QueuedJobCancelsWithoutRunning) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  ex::RunCache::global().clear();
  charter::Session session(backend, uncached_config(2));
  // Job A occupies the worker; B is queued behind it and cancelled before
  // it can start.
  const charter::JobHandle a = session.submit(program);
  const charter::JobHandle b = session.submit(program);
  b.cancel();
  EXPECT_EQ(b.wait().status, charter::JobStatus::kCancelled);
  EXPECT_EQ(b.progress().completed, 0u);
  EXPECT_EQ(a.wait().status, charter::JobStatus::kDone);
  ex::RunCache::global().clear();
}

TEST(Session, DestructorCancelsOutstandingJobs) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  ex::RunCache::global().clear();
  charter::JobHandle queued;
  {
    charter::Session session(backend, uncached_config(2));
    session.submit(program);  // running (or about to)
    queued = session.submit(program);
    // Destructor: cancels the queue, flags the running job, joins.
  }
  // Handles stay valid after the session is gone and resolve terminally.
  EXPECT_EQ(queued.wait().status, charter::JobStatus::kCancelled);
  ex::RunCache::global().clear();
}

TEST(Session, WaitForTimesOutWhileQueuedBehindWork) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);
  ex::RunCache::global().clear();
  charter::Session session(backend, uncached_config(2));
  const charter::JobHandle a = session.submit(program);
  const charter::JobHandle b = session.submit(program);
  // b cannot be terminal while a is still occupying the session worker.
  EXPECT_FALSE(b.wait_for(std::chrono::milliseconds(1)));
  EXPECT_EQ(a.wait().status, charter::JobStatus::kDone);
  EXPECT_EQ(b.wait().status, charter::JobStatus::kDone);
  ex::RunCache::global().clear();
}

// ---------------------------------------------------------------------------
// Custom Backend implementations through the facade
// ---------------------------------------------------------------------------

namespace {

/// Minimal Backend: delegates compilation to a wrapped FakeBackend but
/// executes noiselessly.  No lowering, no cache identity — the exec layer
/// must fall back to independent whole runs and skip the RunCache.
class NoiselessBackend final : public cb::Backend {
 public:
  explicit NoiselessBackend(const cb::FakeBackend& device)
      : device_(device) {}

  const std::string& name() const override { return name_; }
  cb::CompiledProgram compile(
      const cc::Circuit& logical,
      const charter::transpile::TranspileOptions& options) const override {
    return device_.compile(logical, options);
  }
  std::vector<double> run(const cb::CompiledProgram& program,
                          const cb::RunOptions&) const override {
    ++runs_;
    return device_.ideal(program);
  }
  std::vector<double> ideal(const cb::CompiledProgram& program) const override {
    return device_.ideal(program);
  }
  double duration_ns(const cb::CompiledProgram& program) const override {
    return device_.duration_ns(program);
  }

  std::size_t runs() const { return runs_; }

 private:
  const cb::FakeBackend& device_;
  std::string name_ = "noiseless-test-device";
  mutable std::atomic<std::size_t> runs_{0};
};

/// A backend whose execution always fails: jobs must surface kFailed with
/// the thrown message, and the sync convenience must rethrow.
class BrokenBackend final : public cb::Backend {
 public:
  explicit BrokenBackend(const cb::FakeBackend& device) : device_(device) {}
  const std::string& name() const override { return name_; }
  cb::CompiledProgram compile(
      const cc::Circuit& logical,
      const charter::transpile::TranspileOptions& options) const override {
    return device_.compile(logical, options);
  }
  std::vector<double> run(const cb::CompiledProgram&,
                          const cb::RunOptions&) const override {
    throw charter::Error("device went away");
  }
  std::vector<double> ideal(const cb::CompiledProgram& program) const override {
    return device_.ideal(program);
  }
  double duration_ns(const cb::CompiledProgram&) const override { return 0; }

 private:
  const cb::FakeBackend& device_;
  std::string name_ = "broken-test-device";
};

}  // namespace

TEST(Session, CustomBackendWithoutLoweringRunsEveryJobWhole) {
  const cb::FakeBackend device = cb::FakeBackend::lagos(7);
  const NoiselessBackend backend(device);

  cc::Circuit circuit(3);
  circuit.h(0).cx(0, 1).cx(1, 2);

  charter::SessionConfig config =
      charter::SessionConfig().reversals(2).shots(0);
  config.execution().threads(2);
  charter::Session session(backend, config);
  const cb::CompiledProgram program = session.compile(circuit);
  const co::CharterReport report = session.analyze(program);

  ASSERT_FALSE(report.impacts.empty());
  // No lowering => no checkpoint sharing; no cache identity => no hits.
  EXPECT_EQ(report.exec_stats.full_runs, report.exec_stats.jobs);
  EXPECT_EQ(report.exec_stats.cache_hits, 0u);
  EXPECT_EQ(report.exec_stats.checkpointed, 0u);
  EXPECT_EQ(backend.runs(), report.exec_stats.jobs);
  // Noiseless hardware: every reversed pair cancels exactly.
  for (const co::GateImpact& g : report.impacts)
    EXPECT_LT(g.tvd, 1e-9) << "gate " << g.op_index;
}

TEST(Session, BackendFailureSurfacesAsFailedJob) {
  const cb::FakeBackend device = cb::FakeBackend::lagos(7);
  const BrokenBackend backend(device);

  cc::Circuit circuit(2);
  circuit.h(0).cx(0, 1);

  charter::Session session(backend,
                           charter::SessionConfig().reversals(2).shots(0));
  const cb::CompiledProgram program = session.compile(circuit);
  const charter::JobHandle job = session.submit(program);
  const charter::JobResult& result = job.wait();
  EXPECT_EQ(result.status, charter::JobStatus::kFailed);
  EXPECT_NE(result.error.find("device went away"), std::string::npos);
  EXPECT_THROW(session.analyze(program), charter::Error);
}

// ---------------------------------------------------------------------------
// Job bookkeeping
// ---------------------------------------------------------------------------

TEST(Session, JobIdsAreSequentialAndHandlesAreShared) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  cc::Circuit circuit(2);
  circuit.h(0).cx(0, 1);
  charter::Session session(backend,
                           charter::SessionConfig().reversals(2).shots(0));
  const cb::CompiledProgram program = session.compile(circuit);
  const charter::JobHandle a = session.submit(program);
  const charter::JobHandle b = session.submit_input_impact(program);
  EXPECT_EQ(a.id(), 1u);
  EXPECT_EQ(b.id(), 2u);
  EXPECT_EQ(a.kind(), charter::JobKind::kAnalyze);
  EXPECT_EQ(b.kind(), charter::JobKind::kInputImpact);
  const charter::JobHandle a2 = a;  // copies share state
  a.wait();
  EXPECT_EQ(a2.status(), charter::JobStatus::kDone);
  b.wait();
}

TEST(Session, InvalidHandleThrows) {
  const charter::JobHandle none;
  EXPECT_FALSE(none.valid());
  EXPECT_THROW(none.status(), charter::InvalidArgument);
  EXPECT_THROW(none.wait(), charter::InvalidArgument);
}

}  // namespace
