// Functional tests for the algorithm generators: each circuit must compute
// what it claims on an ideal simulator (QFT delta outputs, adder sums,
// multiplier products, HLF structure, Trotter unitarity), carry correct
// input-prep tags, and the registry must expose the paper's 17 configs.

#include <gtest/gtest.h>

#include <cmath>

#include "algos/algorithms.hpp"
#include "algos/registry.hpp"
#include "sim/statevector.hpp"
#include "util/error.hpp"

namespace ca = charter::algos;
namespace cc = charter::circ;
namespace cs = charter::sim;
using cc::GateKind;

namespace {

/// Index of the most probable outcome.
std::size_t argmax(const std::vector<double>& p) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < p.size(); ++i)
    if (p[i] > p[best]) best = i;
  return best;
}

}  // namespace

// ---- QFT ----

class QftDelta : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(QftDelta, OutputsRequestedBasisState) {
  const std::uint64_t k = GetParam();
  const cc::Circuit c = ca::qft(3, k);
  const auto p = cs::ideal_probabilities(c);
  EXPECT_NEAR(p[k], 1.0, 1e-9) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(AllOutputs3Qubit, QftDelta,
                         ::testing::Values(0u, 1u, 2u, 3u, 4u, 5u, 6u, 7u));

TEST(Qft, LargerInstanceStillDelta) {
  const cc::Circuit c = ca::qft(5, 19);
  const auto p = cs::ideal_probabilities(c);
  EXPECT_NEAR(p[19], 1.0, 1e-9);
}

TEST(Qft, InputPrepTagsOnlyPrepGates) {
  const cc::Circuit c = ca::qft(3, 5);
  const auto prep = c.ops_with_flag(cc::kFlagInputPrep);
  ASSERT_EQ(prep.size(), 6u);  // H + RZ per qubit
  // Prep gates are a prefix.
  for (std::size_t i = 0; i < prep.size(); ++i) EXPECT_EQ(prep[i], i);
}

TEST(Qft, GateBudgetMatchesPaperStructure) {
  // Paper Fig. 7a: QFT(3) has 9 CX, 18 RZ, 12 SX after transpilation; the
  // logical circuit should have 3 CP gates (-> 6 CX + swaps -> 9).
  const cc::Circuit c = ca::qft(3, 0);
  EXPECT_EQ(c.count_kind(GateKind::CP), 3u);
  EXPECT_EQ(c.count_kind(GateKind::SWAP), 1u);
  EXPECT_EQ(c.count_kind(GateKind::H), 6u);  // 3 prep + 3 main
}

// ---- HLF ----

TEST(Hlf, ZeroAdjacencyIsIdentity) {
  const std::vector<int> zero(25, 0);
  const cc::Circuit c = ca::hlf_from_adjacency(5, zero);
  const auto p = cs::ideal_probabilities(c);
  EXPECT_NEAR(p[0], 1.0, 1e-9);  // H^2 = I on every qubit
}

TEST(Hlf, DiagonalOnlyGivesPlusPhases) {
  // A = diag(1,0): circuit = H S H on qubit 0 -> outputs 0/1 with prob 1/2.
  const std::vector<int> adj = {1, 0, 0, 0};
  const cc::Circuit c = ca::hlf_from_adjacency(2, adj);
  const auto p = cs::ideal_probabilities(c);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
  EXPECT_NEAR(p[0], 0.5, 1e-9);
}

TEST(Hlf, DeterministicInSeed) {
  const cc::Circuit a = ca::hlf(5, 42);
  const cc::Circuit b = ca::hlf(5, 42);
  const cc::Circuit c = ca::hlf(5, 43);
  EXPECT_EQ(a.size(), b.size());
  EXPECT_NE(a.size(), c.size());  // different instance (holds for these seeds)
}

TEST(Hlf, RejectsAsymmetricAdjacency) {
  std::vector<int> adj(4, 0);
  adj[1] = 1;  // (0,1) set but (1,0) not
  EXPECT_THROW(ca::hlf_from_adjacency(2, adj), charter::InvalidArgument);
}

// ---- adder ----

class AdderAllInputs
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, std::uint64_t>> {
};

TEST_P(AdderAllInputs, TwoBitSumsAreExact) {
  const auto [a, b] = GetParam();
  const cc::Circuit c = ca::cuccaro_adder(2, a, b, /*carry_out=*/true);
  ASSERT_EQ(c.num_qubits(), 6);
  const auto p = cs::ideal_probabilities(c);
  const std::size_t out = argmax(p);
  EXPECT_NEAR(p[out], 1.0, 1e-9);
  // Decode: b_i at qubit 1+2i, a_i at 2+2i, cout at 2n+1.
  const std::uint64_t sum_bits =
      (((out >> 1) & 1) << 0) | (((out >> 3) & 1) << 1) |
      (((out >> 5) & 1) << 2);
  EXPECT_EQ(sum_bits, a + b) << "a=" << a << " b=" << b;
  // a register restored.
  const std::uint64_t a_bits = (((out >> 2) & 1) << 0) | (((out >> 4) & 1) << 1);
  EXPECT_EQ(a_bits, a);
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, AdderAllInputs,
    ::testing::Combine(::testing::Values(0u, 1u, 2u, 3u),
                       ::testing::Values(0u, 1u, 2u, 3u)));

TEST(Adder, PaperConfigurationsHaveRightWidths) {
  EXPECT_EQ(ca::cuccaro_adder(1, 1, 1, true).num_qubits(), 4);   // Adder (4)
  EXPECT_EQ(ca::cuccaro_adder(4, 5, 7, false).num_qubits(), 9);  // Adder (9)
}

TEST(Adder, FourBitSumModulo) {
  // Without carry-out the sum is modulo 16.
  const cc::Circuit c = ca::cuccaro_adder(4, 9, 11, false);
  const auto p = cs::ideal_probabilities(c);
  const std::size_t out = argmax(p);
  std::uint64_t sum_bits = 0;
  for (int i = 0; i < 4; ++i) sum_bits |= ((out >> (1 + 2 * i)) & 1) << i;
  EXPECT_EQ(sum_bits, (9u + 11u) % 16u);
}

// ---- multiplier ----

TEST(Multiplier, OneByTwoProductsExact) {
  for (std::uint64_t x = 0; x < 2; ++x)
    for (std::uint64_t y = 0; y < 4; ++y) {
      const cc::Circuit c = ca::multiplier(1, 2, x, y);
      ASSERT_EQ(c.num_qubits(), 5);
      const auto p = cs::ideal_probabilities(c);
      const std::size_t out = argmax(p);
      const std::uint64_t product = ((out >> 3) & 1) | (((out >> 4) & 1) << 1);
      EXPECT_EQ(product, x * y) << "x=" << x << " y=" << y;
    }
}

TEST(Multiplier, TwoByTwoProductsExact) {
  for (std::uint64_t x = 0; x < 4; ++x)
    for (std::uint64_t y = 0; y < 4; ++y) {
      const cc::Circuit c = ca::multiplier(2, 2, x, y);
      ASSERT_EQ(c.num_qubits(), 10);
      const auto p = cs::ideal_probabilities(c);
      const std::size_t out = argmax(p);
      EXPECT_NEAR(p[out], 1.0, 1e-9);
      std::uint64_t product = 0;
      for (int i = 0; i < 4; ++i) product |= ((out >> (4 + i)) & 1) << i;
      EXPECT_EQ(product, x * y) << "x=" << x << " y=" << y;
      // Ancillas (qubits 8, 9) uncomputed.
      EXPECT_EQ((out >> 8) & 3, 0u);
    }
}

TEST(Multiplier, RejectsUnsupportedShapes) {
  EXPECT_THROW(ca::multiplier(3, 3, 0, 0), charter::InvalidArgument);
}

// ---- Hamiltonian simulations ----

TEST(Trotter, TfimPreservesNorm) {
  const cc::Circuit c = ca::tfim(4, 5);
  cs::Statevector sv(4);
  sv.apply(c);
  EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-10);
}

TEST(Trotter, TfimZeroFieldKeepsComputationalBasis) {
  // With h = 0 the evolution is diagonal: |0000> stays |0000>.
  const cc::Circuit c = ca::tfim(4, 5, 0.2, 1.0, 0.0);
  const auto p = cs::ideal_probabilities(c);
  EXPECT_NEAR(p[0], 1.0, 1e-9);
}

TEST(Trotter, XyModelConservesExcitationNumber) {
  // The XY interaction hops excitations but never creates/destroys them:
  // starting from Neel (2 excitations in n=4), every populated output state
  // must have Hamming weight 2.
  const cc::Circuit c = ca::xy_model(4, 3);
  const auto p = cs::ideal_probabilities(c);
  for (std::size_t s = 0; s < p.size(); ++s) {
    if (p[s] > 1e-9) EXPECT_EQ(__builtin_popcountll(s), 2) << "state " << s;
  }
}

TEST(Trotter, HeisenbergConservesMagnetization) {
  const cc::Circuit c = ca::heisenberg(4, 4);
  const auto p = cs::ideal_probabilities(c);
  for (std::size_t s = 0; s < p.size(); ++s) {
    if (p[s] > 1e-9) EXPECT_EQ(__builtin_popcountll(s), 2) << "state " << s;
  }
}

TEST(Trotter, StepsIncreaseDepth) {
  EXPECT_GT(ca::tfim(4, 10).depth(), ca::tfim(4, 2).depth());
}

TEST(Trotter, NeelPrepIsTagged) {
  const cc::Circuit c = ca::xy_model(4, 1);
  EXPECT_EQ(c.ops_with_flag(cc::kFlagInputPrep).size(), 2u);
}

// ---- VQE / QAOA ----

TEST(Vqe, StructureAndDeterminism) {
  const cc::Circuit a = ca::vqe_ansatz(4, 3, 9);
  const cc::Circuit b = ca::vqe_ansatz(4, 3, 9);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.op(i).params[0], b.op(i).params[0]);
  EXPECT_EQ(a.count_kind(GateKind::CX), 9u);   // 3 reps * 3 ladder CX
  EXPECT_EQ(a.count_kind(GateKind::RY), 16u);  // (3+1) layers * 4 qubits
}

TEST(Qaoa, TouchesEveryQubit) {
  const cc::Circuit c = ca::qaoa_maxcut(5, 2, 33);
  std::vector<bool> touched(5, false);
  for (const cc::Gate& g : c.ops())
    for (int i = 0; i < g.num_qubits; ++i) touched[g.qubits[i]] = true;
  for (int q = 0; q < 5; ++q) EXPECT_TRUE(touched[q]);
  EXPECT_GE(c.count_kind(GateKind::RZZ), 8u);  // 2 layers * >= 4 edges
}

// ---- registry ----

TEST(Registry, HasAll17PaperConfigs) {
  const auto specs = ca::paper_benchmarks();
  ASSERT_EQ(specs.size(), 17u);
  EXPECT_EQ(specs[0].name, "HLF (5)");
  EXPECT_EQ(specs[2].name, "QFT (3)");
  EXPECT_EQ(specs[14].name, "TFIM (16)");
}

TEST(Registry, WidthsMatchNames) {
  for (const auto& spec : ca::paper_benchmarks()) {
    const cc::Circuit c = spec.build();
    EXPECT_EQ(c.num_qubits(), spec.qubits) << spec.name;
  }
}

TEST(Registry, LookupByKey) {
  const auto spec = ca::find_benchmark("qft3");
  EXPECT_EQ(spec.qubits, 3);
  EXPECT_THROW(ca::find_benchmark("nope"), charter::NotFound);
}

// ---- Grover ----

TEST(Grover, AmplifiesTheMarkedState) {
  for (const std::uint64_t marked : {0u, 3u, 5u, 7u}) {
    const cc::Circuit c = ca::grover(3, marked);
    const auto p = cs::ideal_probabilities(c);
    // 3 qubits, optimal 2 iterations: success probability ~0.945.
    EXPECT_EQ(argmax(p), marked);
    EXPECT_GT(p[marked], 0.9) << "marked=" << marked;
  }
}

TEST(Grover, AncillaChainVersionStillAmplifies) {
  // n = 4 uses the CCX ancilla chain (width 2n - 2 = 6); the marked state
  // lives on the first n qubits and the ancillas must return to |0>.
  const cc::Circuit c = ca::grover(4, 9, 2);
  EXPECT_EQ(c.num_qubits(), 6);
  const auto p = cs::ideal_probabilities(c);
  // Sum over ancilla values for the data-register marginal.
  std::vector<double> marginal(16, 0.0);
  for (std::size_t i = 0; i < p.size(); ++i) marginal[i & 15u] += p[i];
  EXPECT_EQ(argmax(marginal), 9u);
  EXPECT_GT(marginal[9], 0.85);
  // Ancillas uncomputed: every outcome with nonzero ancilla bits is ~0.
  double leaked = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i)
    if ((i >> 4) != 0) leaked += p[i];
  EXPECT_NEAR(leaked, 0.0, 1e-9);
}

TEST(Grover, InputPrepTagsOnlyTheHadamardLayer) {
  const cc::Circuit c = ca::grover(3, 2);
  std::size_t tagged = 0;
  for (const cc::Gate& g : c.ops())
    if (g.has_flag(cc::kFlagInputPrep)) ++tagged;
  EXPECT_EQ(tagged, 3u);  // one H per data qubit, nothing else
}

TEST(Grover, ValidatesArguments) {
  EXPECT_THROW(ca::grover(1, 0), charter::InvalidArgument);
  EXPECT_THROW(ca::grover(3, 8), charter::InvalidArgument);  // marked >= 2^n
  EXPECT_THROW(ca::grover(17, 0), charter::InvalidArgument);
}

// ---- QAOA p=1 ----

TEST(Qaoa, PDepthOneIsDeterministicAndStructured) {
  const cc::Circuit a = ca::qaoa_maxcut(5, 1, 21);
  const cc::Circuit b = ca::qaoa_maxcut(5, 1, 21);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_DOUBLE_EQ(a.op(i).params[0], b.op(i).params[0]);
  // One cost layer (RZZ per edge) and one mixer layer (RX per qubit).
  EXPECT_EQ(a.count_kind(GateKind::RX), 5u);
  EXPECT_GE(a.count_kind(GateKind::RZZ), 4u);
}

// ---- extended registry ----

TEST(Registry, ExtendedAddsCharacterizationBenchmarks) {
  const auto paper = ca::paper_benchmarks();
  const auto extended = ca::extended_benchmarks();
  ASSERT_EQ(extended.size(), paper.size() + 4u);
  for (std::size_t i = 0; i < paper.size(); ++i)
    EXPECT_EQ(extended[i].key, paper[i].key);

  for (const char* key : {"qaoa5p1", "qaoa10p1", "grover3", "grover4"}) {
    const auto spec = ca::find_benchmark(key);
    const cc::Circuit c = spec.build();
    EXPECT_EQ(c.num_qubits(), spec.qubits) << key;
    EXPECT_GT(c.size(), 0u) << key;
  }
  EXPECT_EQ(ca::find_benchmark("grover4").qubits, 6);
}
