// Unit tests for the math library: matrix algebra, unitarity and CPTP
// checks, phase-invariant comparison, and the special functions backing the
// paper's p-values.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "math/matrix.hpp"
#include "math/special.hpp"

namespace cm = charter::math;
using cm::cplx;
using cm::Mat2;
using cm::Mat4;

namespace {

Mat2 pauli_x() {
  Mat2 m;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  return m;
}

Mat2 pauli_y() {
  Mat2 m;
  m(0, 1) = cplx(0.0, -1.0);
  m(1, 0) = cplx(0.0, 1.0);
  return m;
}

Mat2 pauli_z() {
  Mat2 m;
  m(0, 0) = 1.0;
  m(1, 1) = -1.0;
  return m;
}

Mat2 hadamard() {
  Mat2 m;
  m(0, 0) = m(0, 1) = m(1, 0) = M_SQRT1_2;
  m(1, 1) = -M_SQRT1_2;
  return m;
}

}  // namespace

TEST(Mat2, IdentityIsNeutral) {
  const Mat2 h = hadamard();
  EXPECT_NEAR(cm::max_abs_diff(cm::mul(h, Mat2::identity()), h), 0.0, 1e-15);
  EXPECT_NEAR(cm::max_abs_diff(cm::mul(Mat2::identity(), h), h), 0.0, 1e-15);
}

TEST(Mat2, PauliAlgebraHolds) {
  // XY = iZ
  const Mat2 xy = cm::mul(pauli_x(), pauli_y());
  const Mat2 iz = cm::scale(pauli_z(), cplx(0.0, 1.0));
  EXPECT_NEAR(cm::max_abs_diff(xy, iz), 0.0, 1e-15);
  // X^2 = I
  EXPECT_NEAR(cm::max_abs_diff(cm::mul(pauli_x(), pauli_x()),
                               Mat2::identity()),
              0.0, 1e-15);
}

TEST(Mat2, AdjointReversesProducts) {
  const Mat2 a = hadamard();
  const Mat2 b = pauli_y();
  const Mat2 lhs = cm::adjoint(cm::mul(a, b));
  const Mat2 rhs = cm::mul(cm::adjoint(b), cm::adjoint(a));
  EXPECT_NEAR(cm::max_abs_diff(lhs, rhs), 0.0, 1e-15);
}

TEST(Mat2, UnitarityCheck) {
  EXPECT_TRUE(cm::is_unitary(hadamard()));
  EXPECT_TRUE(cm::is_unitary(pauli_y()));
  Mat2 not_unitary = hadamard();
  not_unitary(0, 0) *= 2.0;
  EXPECT_FALSE(cm::is_unitary(not_unitary));
}

TEST(Mat2, EqualUpToPhase) {
  const Mat2 h = hadamard();
  const Mat2 hp = cm::scale(h, std::exp(cplx(0.0, 1.234)));
  EXPECT_TRUE(cm::equal_up_to_phase(hp, h));
  EXPECT_FALSE(cm::equal_up_to_phase(pauli_x(), pauli_z()));
  // A non-unit scale is not a phase.
  EXPECT_FALSE(cm::equal_up_to_phase(cm::scale(h, 2.0), h));
}

TEST(Mat4, KronMatchesManualEntries) {
  const Mat4 zx = cm::kron(pauli_z(), pauli_x());
  // (Z (x) X)[(i,k),(j,l)] = Z[i][j] X[k][l]; row = 2i+k.
  EXPECT_NEAR(std::abs(zx(0, 1) - cplx(1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(zx(1, 0) - cplx(1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(zx(2, 3) - cplx(-1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(zx(3, 2) - cplx(-1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(zx(0, 0)), 0.0, 1e-15);
}

TEST(Mat4, KronOfUnitariesIsUnitary) {
  EXPECT_TRUE(cm::is_unitary(cm::kron(hadamard(), pauli_y())));
}

TEST(Mat4, MulAndAdjointConsistent) {
  const Mat4 a = cm::kron(hadamard(), pauli_x());
  const Mat4 prod = cm::mul(a, cm::adjoint(a));
  EXPECT_NEAR(cm::max_abs_diff(prod, Mat4::identity()), 0.0, 1e-12);
}

TEST(Mat4, EqualUpToPhase) {
  const Mat4 a = cm::kron(hadamard(), hadamard());
  const Mat4 b = cm::scale(a, std::exp(cplx(0.0, -0.77)));
  EXPECT_TRUE(cm::equal_up_to_phase(b, a));
}

TEST(Cptp, AmplitudeDampingKrausComplete) {
  const double gamma = 0.3;
  Mat2 k0, k1;
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - gamma);
  k1(0, 1) = std::sqrt(gamma);
  EXPECT_TRUE(cm::is_cptp({&k0, &k1, nullptr, nullptr}, 2));
}

TEST(Cptp, IncompleteSetRejected) {
  Mat2 k0;
  k0(0, 0) = 0.9;
  k0(1, 1) = 0.9;
  EXPECT_FALSE(cm::is_cptp({&k0, nullptr, nullptr, nullptr}, 1));
}

// ---- special functions ----

TEST(Special, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(cm::reg_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(cm::reg_incomplete_beta(2.0, 3.0, 1.0), 1.0);
}

TEST(Special, IncompleteBetaSymmetry) {
  // I_x(a,b) = 1 - I_{1-x}(b,a)
  const double v1 = cm::reg_incomplete_beta(2.5, 1.5, 0.3);
  const double v2 = 1.0 - cm::reg_incomplete_beta(1.5, 2.5, 0.7);
  EXPECT_NEAR(v1, v2, 1e-12);
}

TEST(Special, IncompleteBetaKnownValues) {
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(cm::reg_incomplete_beta(1.0, 1.0, 0.42), 0.42, 1e-12);
  // I_x(1,2) = 1-(1-x)^2.
  EXPECT_NEAR(cm::reg_incomplete_beta(1.0, 2.0, 0.25),
              1.0 - 0.75 * 0.75, 1e-12);
  // I_x(2,2) = x^2 (3-2x).
  EXPECT_NEAR(cm::reg_incomplete_beta(2.0, 2.0, 0.4),
              0.4 * 0.4 * (3.0 - 0.8), 1e-12);
}

TEST(Special, StudentTKnownQuantiles) {
  // For dof=10, t=2.228 is the 97.5% quantile -> two-sided p = 0.05.
  EXPECT_NEAR(cm::student_t_two_sided_pvalue(2.228, 10.0), 0.05, 1e-3);
  // t=0 -> p=1.
  EXPECT_NEAR(cm::student_t_two_sided_pvalue(0.0, 7.0), 1.0, 1e-12);
  // Symmetric in t.
  EXPECT_NEAR(cm::student_t_two_sided_pvalue(-1.5, 20.0),
              cm::student_t_two_sided_pvalue(1.5, 20.0), 1e-12);
}

TEST(Special, StudentTLargeDofApproachesNormal) {
  // dof -> inf: p(|T|>1.96) ~ 0.05.
  EXPECT_NEAR(cm::student_t_two_sided_pvalue(1.96, 100000.0), 0.05, 2e-3);
}

TEST(Special, StudentTDegenerateDof) {
  EXPECT_DOUBLE_EQ(cm::student_t_two_sided_pvalue(5.0, 0.0), 1.0);
}
