// SIMD layer contract tests (math/simd.hpp, math/simd_dispatch.hpp):
//
//  1. The scalar path is bit-identical to the pre-SIMD kernels.  Reference
//     copies of the historical loops live in this file (serial, verbatim
//     arithmetic); the scalar table must reproduce them exactly — double ==,
//     not a tolerance — for every kernel, every qubit position, and every
//     width 1..7.
//  2. Every available path agrees with scalar to <= 1e-12 in max-abs
//     amplitude difference over the same randomized sweep.
//  3. Each path is deterministic: repeating a kernel on the same input is
//     bit-identical (the vector paths mix register and fallback loops, so
//     this guards against any input-independent nondeterminism).
//  4. The dispatcher: scalar is always available, set_path round-trips, and
//     the active table matches the reported path.
//
// The sweep runs on the dispatch *table* functions directly, so it tests
// exactly what sim/kernels.hpp forwards to.

#include <gtest/gtest.h>

#include <array>
#include <complex>
#include <cstring>
#include <utility>
#include <vector>

#include "math/simd.hpp"
#include "math/simd_dispatch.hpp"
#include "util/rng.hpp"

namespace ms = charter::math::simd;
using charter::math::cplx;
using charter::math::Mat2;
using charter::util::Rng;

namespace {

// ---------------------------------------------------------------------------
// Reference kernels: the pre-SIMD scalar loops, inlined serially.
// ---------------------------------------------------------------------------

std::uint64_t insert0(std::uint64_t x, std::uint64_t m) {
  return ((x & ~(m - 1)) << 1) | (x & (m - 1));
}

void ref_apply_1q(cplx* a, std::uint64_t dim, int q, const Mat2& u) {
  const std::uint64_t stride = 1ULL << q;
  for (std::uint64_t p = 0; p < (dim >> 1); ++p) {
    const std::uint64_t i0 = insert0(p, stride);
    const std::uint64_t i1 = i0 | stride;
    const cplx a0 = a[i0];
    const cplx a1 = a[i1];
    a[i0] = u(0, 0) * a0 + u(0, 1) * a1;
    a[i1] = u(1, 0) * a0 + u(1, 1) * a1;
  }
}

void ref_apply_diag_1q(cplx* a, std::uint64_t dim, int q, cplx d0, cplx d1) {
  const std::uint64_t mask = 1ULL << q;
  for (std::uint64_t i = 0; i < dim; ++i) a[i] *= (i & mask) ? d1 : d0;
}

void ref_apply_x(cplx* a, std::uint64_t dim, int q) {
  const std::uint64_t stride = 1ULL << q;
  for (std::uint64_t p = 0; p < (dim >> 1); ++p) {
    const std::uint64_t i0 = insert0(p, stride);
    std::swap(a[i0], a[i0 | stride]);
  }
}

void ref_apply_cx(cplx* a, std::uint64_t dim, int c, int t) {
  const std::uint64_t cm = 1ULL << c;
  const std::uint64_t tm = 1ULL << t;
  for (std::uint64_t i = 0; i < (dim >> 1); ++i) {
    const std::uint64_t i0 = insert0(i, tm);
    if (i0 & cm) std::swap(a[i0], a[i0 | tm]);
  }
}

void ref_apply_diag_2q(cplx* a, std::uint64_t dim, int qa, int qb,
                       const std::array<cplx, 4>& d) {
  const std::uint64_t am = 1ULL << qa;
  const std::uint64_t bm = 1ULL << qb;
  for (std::uint64_t i = 0; i < dim; ++i) {
    const unsigned idx = ((i & am) ? 1u : 0u) | ((i & bm) ? 2u : 0u);
    a[i] *= d[idx];
  }
}

void ref_apply_2q(cplx* a, std::uint64_t dim, int qa, int qb,
                  const charter::math::Mat4& u) {
  const std::uint64_t amask = 1ULL << qa;
  const std::uint64_t bmask = 1ULL << qb;
  const std::uint64_t lo = amask < bmask ? amask : bmask;
  const std::uint64_t hi = amask < bmask ? bmask : amask;
  for (std::uint64_t i = 0; i < (dim >> 2); ++i) {
    const std::uint64_t base = insert0(insert0(i, lo), hi);
    const std::uint64_t idx[4] = {base, base | amask, base | bmask,
                                  base | amask | bmask};
    cplx in[4];
    for (int k = 0; k < 4; ++k) in[k] = a[idx[k]];
    for (int r = 0; r < 4; ++r) {
      cplx acc = 0.0;
      for (int k = 0; k < 4; ++k)
        acc += u(static_cast<std::size_t>(r), static_cast<std::size_t>(k)) *
               in[k];
      a[idx[r]] = acc;
    }
  }
}

void ref_apply_1q_pair(cplx* a, std::uint64_t dim, int qa, const Mat2& ua,
                       int qb, const Mat2& ub) {
  const std::uint64_t am = 1ULL << qa;
  const std::uint64_t bm = 1ULL << qb;
  const std::uint64_t lo = am < bm ? am : bm;
  const std::uint64_t hi = am < bm ? bm : am;
  for (std::uint64_t i = 0; i < (dim >> 2); ++i) {
    const std::uint64_t base = insert0(insert0(i, lo), hi);
    const std::uint64_t i00 = base, i10 = base | am, i01 = base | bm,
                        i11 = base | am | bm;
    const cplx v00 = a[i00], v10 = a[i10], v01 = a[i01], v11 = a[i11];
    const cplx t00 = ua(0, 0) * v00 + ua(0, 1) * v10;
    const cplx t10 = ua(1, 0) * v00 + ua(1, 1) * v10;
    const cplx t01 = ua(0, 0) * v01 + ua(0, 1) * v11;
    const cplx t11 = ua(1, 0) * v01 + ua(1, 1) * v11;
    a[i00] = ub(0, 0) * t00 + ub(0, 1) * t01;
    a[i01] = ub(1, 0) * t00 + ub(1, 1) * t01;
    a[i10] = ub(0, 0) * t10 + ub(0, 1) * t11;
    a[i11] = ub(1, 0) * t10 + ub(1, 1) * t11;
  }
}

void ref_apply_diag_1q_pair(cplx* a, std::uint64_t dim, int qa, cplx a0,
                            cplx a1, int qb, cplx b0, cplx b1) {
  const std::uint64_t am = 1ULL << qa;
  const std::uint64_t bm = 1ULL << qb;
  for (std::uint64_t i = 0; i < dim; ++i) {
    cplx v = a[i];
    v *= (i & am) ? a1 : a0;
    v *= (i & bm) ? b1 : b0;
    a[i] = v;
  }
}

void ref_apply_diag_2q_pair(cplx* a, std::uint64_t dim, int qa, int qb,
                            const std::array<cplx, 4>& da, int qc, int qd,
                            const std::array<cplx, 4>& db) {
  const std::uint64_t am = 1ULL << qa, bm = 1ULL << qb;
  const std::uint64_t cm = 1ULL << qc, dm = 1ULL << qd;
  for (std::uint64_t i = 0; i < dim; ++i) {
    const unsigned ia = ((i & am) ? 1u : 0u) | ((i & bm) ? 2u : 0u);
    const unsigned ib = ((i & cm) ? 1u : 0u) | ((i & dm) ? 2u : 0u);
    cplx v = a[i];
    v *= da[ia];
    v *= db[ib];
    a[i] = v;
  }
}

void ref_apply_cx_pair(cplx* a, std::uint64_t dim, int c1, int t1, int c2,
                       int t2) {
  const std::uint64_t c1m = 1ULL << c1, t1m = 1ULL << t1;
  const std::uint64_t c2m = 1ULL << c2, t2m = 1ULL << t2;
  const std::uint64_t lo = t1m < t2m ? t1m : t2m;
  const std::uint64_t hi = t1m < t2m ? t2m : t1m;
  for (std::uint64_t i = 0; i < (dim >> 2); ++i) {
    const std::uint64_t base = insert0(insert0(i, lo), hi);
    if (base & c1m) {
      std::swap(a[base], a[base | t1m]);
      std::swap(a[base | t2m], a[base | t1m | t2m]);
    }
    if (base & c2m) {
      std::swap(a[base], a[base | t2m]);
      std::swap(a[base | t1m], a[base | t1m | t2m]);
    }
  }
}

void ref_thermal_block(cplx* a, std::uint64_t dim, std::uint64_t row,
                       std::uint64_t col, double gamma, double keep) {
  for (std::uint64_t i = 0; i < (dim >> 2); ++i) {
    const std::uint64_t base = insert0(insert0(i, row), col);
    a[base] += gamma * a[base | row | col];
    a[base | row | col] *= (1.0 - gamma);
    a[base | col] *= keep;
    a[base | row] *= keep;
  }
}

void ref_depol1q_block(cplx* a, std::uint64_t dim, std::uint64_t row,
                       std::uint64_t col, double mix, double coh) {
  for (std::uint64_t i = 0; i < (dim >> 2); ++i) {
    const std::uint64_t base = insert0(insert0(i, row), col);
    const cplx d0 = a[base], d1 = a[base | row | col];
    a[base] = (1.0 - mix) * d0 + mix * d1;
    a[base | row | col] = (1.0 - mix) * d1 + mix * d0;
    a[base | col] *= coh;
    a[base | row] *= coh;
  }
}

void ref_bitflip_block(cplx* a, std::uint64_t dim, std::uint64_t row,
                       std::uint64_t col, double p) {
  for (std::uint64_t i = 0; i < (dim >> 2); ++i) {
    const std::uint64_t base = insert0(insert0(i, row), col);
    const cplx b00 = a[base], b01 = a[base | col], b10 = a[base | row],
               b11 = a[base | row | col];
    a[base] = (1.0 - p) * b00 + p * b11;
    a[base | row | col] = (1.0 - p) * b11 + p * b00;
    a[base | col] = (1.0 - p) * b01 + p * b10;
    a[base | row] = (1.0 - p) * b10 + p * b01;
  }
}

// ---------------------------------------------------------------------------
// Sweep machinery
// ---------------------------------------------------------------------------

std::vector<cplx> random_state(std::uint64_t dim, Rng& rng) {
  std::vector<cplx> a(dim);
  for (cplx& v : a) v = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return a;
}

Mat2 random_mat2(Rng& rng) {
  Mat2 u;
  for (cplx& v : u.m)
    v = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return u;
}

std::array<cplx, 4> random_diag4(Rng& rng) {
  std::array<cplx, 4> d;
  for (cplx& v : d)
    v = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return d;
}

charter::math::Mat4 random_mat4(Rng& rng) {
  charter::math::Mat4 u;
  for (cplx& v : u.m)
    v = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  return u;
}

double max_abs_diff(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

bool bit_identical(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  return std::memcmp(a.data(), b.data(), a.size() * sizeof(cplx)) == 0;
}

/// Runs every kernel of \p table over all qubit positions at width \p n and
/// compares against the serial reference copies above via \p check, which
/// receives (reference_result, table_result, context_label).
template <typename Check>
void sweep_against_reference(const ms::KernelTable& table, int n, Rng& rng,
                             Check&& check) {
  const std::uint64_t dim = 1ULL << n;
  const auto fresh = [&] { return random_state(dim, rng); };
  const auto run = [&](const char* label, auto&& ref_fn, auto&& simd_fn) {
    std::vector<cplx> want = fresh();
    std::vector<cplx> got = want;
    ref_fn(want.data());
    simd_fn(got.data());
    check(want, got, label);
    // Determinism: re-running on the same input is bit-identical.
    std::vector<cplx> again = want;
    simd_fn(again.data());
    std::vector<cplx> again2 = want;
    simd_fn(again2.data());
    EXPECT_TRUE(bit_identical(again, again2)) << label << " nondeterministic";
  };

  for (int q = 0; q < n; ++q) {
    const Mat2 u = random_mat2(rng);
    const cplx d0(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    const cplx d1(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    run("apply_1q", [&](cplx* a) { ref_apply_1q(a, dim, q, u); },
        [&](cplx* a) { table.apply_1q(a, dim, q, u); });
    run("apply_diag_1q",
        [&](cplx* a) { ref_apply_diag_1q(a, dim, q, d0, d1); },
        [&](cplx* a) { table.apply_diag_1q(a, dim, q, d0, d1); });
    run("apply_x", [&](cplx* a) { ref_apply_x(a, dim, q); },
        [&](cplx* a) { table.apply_x(a, dim, q); });
  }

  for (int qa = 0; qa < n; ++qa) {
    for (int qb = 0; qb < n; ++qb) {
      if (qa == qb) continue;
      const Mat2 ua = random_mat2(rng), ub = random_mat2(rng);
      const std::array<cplx, 4> d = random_diag4(rng);
      const std::array<cplx, 4> da = random_diag4(rng);
      const std::array<cplx, 4> db = random_diag4(rng);
      const cplx a0(rng.uniform(-1.0, 1.0), 0.3), a1(0.1, rng.uniform());
      const cplx b0(rng.uniform(), -0.2), b1(rng.uniform(), 0.7);
      run("apply_cx", [&](cplx* a) { ref_apply_cx(a, dim, qa, qb); },
          [&](cplx* a) { table.apply_cx(a, dim, qa, qb); });
      // Dense 4x4 (fused-wide tape op) — exercised at every (qa, qb)
      // ordering so the bit-0 operand and low-stride fallbacks are hit.
      if (n >= 2) {
        const charter::math::Mat4 u4 = random_mat4(rng);
        run("apply_2q", [&](cplx* a) { ref_apply_2q(a, dim, qa, qb, u4); },
            [&](cplx* a) { table.apply_2q(a, dim, qa, qb, u4); });
      }
      run("apply_diag_2q",
          [&](cplx* a) { ref_apply_diag_2q(a, dim, qa, qb, d); },
          [&](cplx* a) { table.apply_diag_2q(a, dim, qa, qb, d); });
      run("apply_1q_pair",
          [&](cplx* a) { ref_apply_1q_pair(a, dim, qa, ua, qb, ub); },
          [&](cplx* a) { table.apply_1q_pair(a, dim, qa, ua, qb, ub); });
      run("apply_diag_1q_pair",
          [&](cplx* a) {
            ref_apply_diag_1q_pair(a, dim, qa, a0, a1, qb, b0, b1);
          },
          [&](cplx* a) {
            table.apply_diag_1q_pair(a, dim, qa, a0, a1, qb, b0, b1);
          });
      // Two diagonal pairs, arbitrary (possibly overlapping) supports.
      const int qc = static_cast<int>(rng.uniform_int(n));
      int qd = static_cast<int>(rng.uniform_int(n));
      if (qd == qc) qd = (qc + 1) % n;
      if (qc != qd) {
        run("apply_diag_2q_pair",
            [&](cplx* a) {
              ref_apply_diag_2q_pair(a, dim, qa, qb, da, qc, qd, db);
            },
            [&](cplx* a) {
              table.apply_diag_2q_pair(a, dim, qa, qb, da, qc, qd, db);
            });
      }
      // Channel blocks: row < col per the vec(rho) layout contract.
      if (qa < qb) {
        const std::uint64_t row = 1ULL << qa;
        const std::uint64_t col = 1ULL << qb;
        const double gamma = rng.uniform(0.0, 0.9);
        const double keep = rng.uniform(0.1, 1.0);
        const double mix = rng.uniform(0.0, 0.5);
        const double coh = rng.uniform(0.2, 1.0);
        const double p = rng.uniform(0.0, 0.5);
        run("thermal_block",
            [&](cplx* a) { ref_thermal_block(a, dim, row, col, gamma, keep); },
            [&](cplx* a) {
              table.thermal_block(a, dim, row, col, gamma, keep);
            });
        run("depol1q_block",
            [&](cplx* a) { ref_depol1q_block(a, dim, row, col, mix, coh); },
            [&](cplx* a) { table.depol1q_block(a, dim, row, col, mix, coh); });
        run("bitflip_block",
            [&](cplx* a) { ref_bitflip_block(a, dim, row, col, p); },
            [&](cplx* a) { table.bitflip_block(a, dim, row, col, p); });
      }
    }
  }

  // CX pairs require two disjoint {control, target} sets.
  if (n >= 4) {
    for (int c1 = 0; c1 < n; ++c1)
      for (int t1 = 0; t1 < n; ++t1)
        for (int c2 = 0; c2 < n; ++c2)
          for (int t2 = 0; t2 < n; ++t2) {
            const bool distinct = c1 != t1 && c2 != t2 && c1 != c2 &&
                                  c1 != t2 && t1 != c2 && t1 != t2;
            if (!distinct) continue;
            run("apply_cx_pair",
                [&](cplx* a) { ref_apply_cx_pair(a, dim, c1, t1, c2, t2); },
                [&](cplx* a) { table.apply_cx_pair(a, dim, c1, t1, c2, t2); });
          }
  }

  // Kraus accumulation.
  {
    std::vector<cplx> acc = fresh(), src = fresh();
    std::vector<cplx> want = acc;
    for (std::uint64_t i = 0; i < dim; ++i) want[i] += src[i];
    table.accum_add(acc.data(), src.data(), dim);
    check(want, acc, "accum_add");
  }
}

}  // namespace

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(ms::path_available(ms::SimdPath::kScalar));
  EXPECT_NE(ms::table_scalar(), nullptr);
  EXPECT_STREQ(ms::table_scalar()->name, "scalar");
}

TEST(SimdDispatch, SetPathRoundTrips) {
  const ms::SimdPath original = ms::active_path();
  for (const ms::SimdPath p : {ms::SimdPath::kScalar, ms::SimdPath::kWidth2,
                               ms::SimdPath::kAvx2, ms::SimdPath::kAvx512}) {
    if (!ms::path_available(p)) {
      EXPECT_FALSE(ms::set_path(p));
      continue;
    }
    EXPECT_TRUE(ms::set_path(p));
    EXPECT_EQ(ms::active_path(), p);
    EXPECT_STREQ(ms::active().name, ms::path_name(p));
  }
  EXPECT_TRUE(ms::set_path(original));
}

TEST(SimdDispatch, BestPathIsAvailableAndListed) {
  EXPECT_TRUE(ms::path_available(ms::best_path()));
  const std::string avail = ms::available_paths();
  EXPECT_NE(avail.find("scalar"), std::string::npos);
  EXPECT_NE(avail.find(ms::path_name(ms::best_path())), std::string::npos);
}

// The scalar table must reproduce the pre-SIMD kernels bit for bit: the
// golden fixtures and every historical result were produced by exactly this
// arithmetic.
TEST(SimdKernels, ScalarPathBitIdenticalToPreChangeKernels) {
  Rng rng(0xc0ffee);
  for (int n = 1; n <= 7; ++n) {
    sweep_against_reference(
        *ms::table_scalar(), n, rng,
        [&](const std::vector<cplx>& want, const std::vector<cplx>& got,
            const char* label) {
          ASSERT_TRUE(bit_identical(want, got))
              << label << " diverged from the pre-change kernels at n=" << n;
        });
  }
}

// Every vector path agrees with the reference (== scalar) to <= 1e-12 over
// the full op x position x width sweep.
TEST(SimdKernels, AllPathsAgreeWithinTolerance) {
  for (const ms::SimdPath p : {ms::SimdPath::kWidth2, ms::SimdPath::kAvx2,
                               ms::SimdPath::kAvx512}) {
    if (!ms::path_available(p)) {
      GTEST_LOG_(INFO) << "path " << ms::path_name(p)
                       << " unavailable; skipped";
      continue;
    }
    const ms::KernelTable* table = p == ms::SimdPath::kWidth2
                                       ? ms::table_width2()
                                       : p == ms::SimdPath::kAvx2
                                             ? ms::table_avx2()
                                             : ms::table_avx512();
    ASSERT_NE(table, nullptr);
    Rng rng(0x5eed + static_cast<std::uint64_t>(p));
    for (int n = 1; n <= 7; ++n) {
      sweep_against_reference(
          *table, n, rng,
          [&](const std::vector<cplx>& want, const std::vector<cplx>& got,
              const char* label) {
            ASSERT_LE(max_abs_diff(want, got), 1e-12)
                << label << " path=" << table->name << " n=" << n;
          });
    }
  }
}
