# CTest driver for the packaging check (see CMakeLists.txt's
# install_consumer entry).  Stages `cmake --install` into a scratch
# prefix, configures tests/consumer/ against it with find_package, builds,
# and runs the produced binary.  Any failing step fails the test.
#
# Inputs (via -D): CHARTER_BUILD_DIR, CHARTER_CONSUMER_DIR, STAGE_DIR,
# BUILD_TYPE (may be empty for multi-config-less setups).

foreach(var CHARTER_BUILD_DIR CHARTER_CONSUMER_DIR STAGE_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "missing -D${var}")
  endif()
endforeach()

set(prefix ${STAGE_DIR}/prefix)
set(consumer_build ${STAGE_DIR}/build)
file(REMOVE_RECURSE ${STAGE_DIR})

function(run_step name)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "install_consumer: ${name} failed (exit ${rc})")
  endif()
endfunction()

run_step("install" ${CMAKE_COMMAND} --install ${CHARTER_BUILD_DIR}
         --prefix ${prefix})

set(configure_args
    -S ${CHARTER_CONSUMER_DIR} -B ${consumer_build}
    -DCMAKE_PREFIX_PATH=${prefix})
if(BUILD_TYPE)
  list(APPEND configure_args -DCMAKE_BUILD_TYPE=${BUILD_TYPE})
endif()
run_step("configure" ${CMAKE_COMMAND} ${configure_args})

run_step("build" ${CMAKE_COMMAND} --build ${consumer_build})

find_program(consumer_exe charter_consumer PATHS ${consumer_build}
             PATH_SUFFIXES . ${BUILD_TYPE} NO_DEFAULT_PATH)
if(NOT consumer_exe)
  message(FATAL_ERROR "install_consumer: built binary not found")
endif()
run_step("run" ${consumer_exe})
