// The README quickstart, built out-of-tree against an installed charter
// package (find_package(charter) + charter::charter).  Exits nonzero if
// the facade misbehaves, so the install_consumer CTest entry is a real
// end-to-end packaging check, not just a link test.  Exercises the
// ExecutionConfig builder and the public exec surface (charter/exec.hpp:
// StrategyKind + ExecStats) the way a downstream consumer would.

#include <charter/charter.hpp>
#include <charter/exec.hpp>

#include <cstdio>

int main() {
  namespace cb = charter::backend;

  // Build and compile a small GHZ + kickback circuit for fake Lagos.
  charter::circ::Circuit circuit(3);
  circuit.h(0).cx(0, 1).cx(1, 2).rz(2, 0.7).cx(1, 2).cx(0, 1).h(0);

  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  charter::SessionConfig config;
  config.reversals(5).shots(8192).seed(42);
  config.execution().threads(2).strategy(charter::exec::StrategyKind::kAuto);
  charter::Session session(backend, config);
  const cb::CompiledProgram program = session.compile(circuit);

  // Async submission with a progress callback, then wait for the report.
  std::size_t progress_events = 0;
  charter::JobCallbacks callbacks;
  callbacks.on_progress = [&](const charter::JobProgress&) {
    ++progress_events;
  };
  charter::JobHandle job = session.submit(program, callbacks);
  const charter::JobResult& result = job.wait();

  if (result.status != charter::JobStatus::kDone) {
    std::fprintf(stderr, "job ended %s: %s\n",
                 charter::to_string(result.status).c_str(),
                 result.error.c_str());
    return 1;
  }
  if (result.report.impacts.empty() || progress_events == 0) {
    std::fprintf(stderr, "empty report (%zu impacts) or no progress (%zu)\n",
                 result.report.impacts.size(), progress_events);
    return 1;
  }

  // The per-report execution stats are part of the public surface: every
  // job the sweep ran must be accounted for.
  const charter::exec::ExecStats& stats = result.report.exec_stats;
  if (stats.jobs != result.report.analyzed_gates + 1) {
    std::fprintf(stderr, "exec stats lost jobs: %zu jobs for %zu gates\n",
                 stats.jobs, result.report.analyzed_gates);
    return 1;
  }

  const auto ranked = result.report.sorted_by_impact();
  std::printf(
      "charter %s: analyzed %zu gates on %s (strategy %s); top impact %.4f "
      "TVD\n",
      CHARTER_VERSION_STRING, result.report.analyzed_gates,
      session.backend().name().c_str(),
      charter::exec::strategy_name(session.config().execution().strategy()),
      ranked.front().tvd);
  return 0;
}
