// Two-tier RunCache: the persistent disk tier (exec/disk_cache.hpp) and
// the memory tier's true-LRU behavior.
//
// The disk tier is what turns the run cache from a per-process
// optimization into cross-process memoization — the property charterd is
// built on — so these tests hit the contract hard: bit-identical
// round-trips across cache instances (a daemon restart), corruption and
// truncation tolerated as misses rather than failures, two *processes*
// sharing one directory (fork, not threads: rename-based publish is the
// only coordination), and byte-budget eviction in LRU order.

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/cache.hpp"
#include "exec/disk_cache.hpp"

namespace ex = charter::exec;
namespace fs = std::filesystem;

namespace {

/// Fresh scratch directory per test, removed on destruction.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("charter_cache_test_" + tag + "_" + std::to_string(::getpid())))
                .string();
    fs::remove_all(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

ex::Fingerprint key_of(std::uint64_t i) {
  ex::FingerprintBuilder b;
  b.mix(i * 0x9e3779b97f4a7c15ULL + 1);
  return b.result();
}

std::vector<double> payload_of(std::uint64_t i, std::size_t n = 8) {
  std::vector<double> p(n);
  for (std::size_t k = 0; k < n; ++k)
    p[k] = 1.0 / static_cast<double>(i + k + 1);
  return p;
}

}  // namespace

// ---------------------------------------------------------------------------
// Disk tier: persistence contract
// ---------------------------------------------------------------------------

TEST(DiskCache, RoundTripsBitIdenticalAcrossInstances) {
  ScratchDir dir("roundtrip");
  const std::vector<double> stored = payload_of(7, 32);
  {
    ex::DiskCacheTier tier(dir.path(), 1ull << 20);
    tier.store(key_of(7), stored);
  }
  // A new instance over the same directory — a daemon restart.
  ex::DiskCacheTier tier(dir.path(), 1ull << 20);
  const auto loaded = tier.load(key_of(7));
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->size(), stored.size());
  for (std::size_t k = 0; k < stored.size(); ++k)
    EXPECT_EQ((*loaded)[k], stored[k]) << "double " << k;  // bit-identical
  EXPECT_FALSE(tier.load(key_of(8)).has_value());
}

TEST(DiskCache, RunCacheServesFromDiskAfterMemoryTierDropped) {
  ScratchDir dir("promote");
  ex::RunCache cache(1ull << 20);
  cache.set_disk_tier(dir.path(), 1ull << 20);
  cache.store(key_of(1), payload_of(1));
  cache.clear();  // drop the memory tier only — the restart semantics

  ex::CacheTier served = ex::CacheTier::kNone;
  const auto hit = cache.lookup(key_of(1), &served);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(served, ex::CacheTier::kDisk);
  EXPECT_EQ(*hit, payload_of(1));

  // The disk hit was promoted: the next lookup is served from memory.
  const auto again = cache.lookup(key_of(1), &served);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(served, ex::CacheTier::kMemory);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.disk.hits, 1u);
  EXPECT_EQ(stats.memory.hits, 1u);
}

// ---------------------------------------------------------------------------
// Disk tier: corruption tolerance
// ---------------------------------------------------------------------------

namespace {

std::string entry_path(const ScratchDir& dir, const ex::Fingerprint& key) {
  return (fs::path(dir.path()) / ex::DiskCacheTier::entry_filename(key))
      .string();
}

}  // namespace

TEST(DiskCache, CorruptedPayloadIsAMissAndIsRemoved) {
  ScratchDir dir("corrupt");
  ex::DiskCacheTier tier(dir.path(), 1ull << 20);
  tier.store(key_of(3), payload_of(3));

  // Flip one payload byte; the checksum must catch it.
  {
    std::fstream f(entry_path(dir, key_of(3)),
                   std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(40);  // inside the payload (header is 32 bytes)
    f.put('\x5a');
  }
  EXPECT_FALSE(tier.load(key_of(3)).has_value());
  EXPECT_EQ(tier.stats().corrupt_skipped, 1u);
  // The poisoned file is gone, so the slot can be refilled.
  EXPECT_FALSE(fs::exists(entry_path(dir, key_of(3))));
  tier.store(key_of(3), payload_of(3));
  EXPECT_TRUE(tier.load(key_of(3)).has_value());
}

TEST(DiskCache, TruncatedEntryIsAMissNotAFailure) {
  ScratchDir dir("truncate");
  ex::DiskCacheTier tier(dir.path(), 1ull << 20);
  tier.store(key_of(4), payload_of(4, 64));
  fs::resize_file(entry_path(dir, key_of(4)), 48);  // mid-payload
  EXPECT_FALSE(tier.load(key_of(4)).has_value());
  EXPECT_EQ(tier.stats().corrupt_skipped, 1u);
}

TEST(DiskCache, WrongMagicVersionOrKeyIsAMiss) {
  ScratchDir dir("header");
  ex::DiskCacheTier tier(dir.path(), 1ull << 20);
  tier.store(key_of(5), payload_of(5));
  // A file whose name claims key 6 but whose header says key 5 (a renamed
  // or mis-copied entry) must not be served as key 6.
  fs::copy_file(entry_path(dir, key_of(5)), entry_path(dir, key_of(6)));
  EXPECT_FALSE(tier.load(key_of(6)).has_value());
  // Key 5's own entry is untouched.
  EXPECT_TRUE(tier.load(key_of(5)).has_value());

  {
    std::fstream f(entry_path(dir, key_of(5)),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('X');  // break the magic
  }
  EXPECT_FALSE(tier.load(key_of(5)).has_value());
}

TEST(DiskCache, StrayFilesInTheDirectoryAreIgnored) {
  ScratchDir dir("stray");
  fs::create_directories(dir.path());
  std::ofstream(fs::path(dir.path()) / "README.txt") << "not a cache entry";
  std::ofstream(fs::path(dir.path()) / ".tmp-999-0") << "orphaned temp";
  ex::DiskCacheTier tier(dir.path(), 1ull << 20);
  tier.store(key_of(9), payload_of(9));
  EXPECT_TRUE(tier.load(key_of(9)).has_value());
  EXPECT_EQ(tier.stats().entries, 1u);  // strays are not entries
}

// ---------------------------------------------------------------------------
// Disk tier: LRU byte budget
// ---------------------------------------------------------------------------

TEST(DiskCache, BudgetEvictsLeastRecentlyUsedFirst) {
  ScratchDir dir("lru");
  // Each entry: 32B header + 8*8B payload + 8B checksum = 104 bytes.
  const std::size_t entry_bytes = 32 + 8 * sizeof(double) + 8;
  ex::DiskCacheTier tier(dir.path(), entry_bytes * 3);

  tier.store(key_of(0), payload_of(0));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tier.store(key_of(1), payload_of(1));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  tier.store(key_of(2), payload_of(2));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  // Touch key 0: its mtime is refreshed, so key 1 is now the oldest.
  ASSERT_TRUE(tier.load(key_of(0)).has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(20));

  tier.store(key_of(3), payload_of(3));  // over budget: one eviction
  EXPECT_TRUE(tier.load(key_of(0)).has_value()) << "recently used, kept";
  EXPECT_FALSE(tier.load(key_of(1)).has_value()) << "LRU victim";
  EXPECT_TRUE(tier.load(key_of(2)).has_value());
  EXPECT_TRUE(tier.load(key_of(3)).has_value());
  EXPECT_GE(tier.stats().evictions, 1u);
}

TEST(DiskCache, MemoryTierHitRefreshesDiskEntryMtime) {
  ScratchDir dir("memtouch");
  const std::size_t entry_bytes = 32 + 8 * sizeof(double) + 8;
  ex::RunCache cache(1ull << 20);
  cache.set_disk_tier(dir.path(), entry_bytes * 3);
  for (std::uint64_t i = 0; i < 3; ++i) cache.store(key_of(i), payload_of(i));

  // Simulate a coarse-mtime filesystem: the whole store burst lands on a
  // single timestamp tick for keys 1/2, and key 0 is older still.
  const auto stamp =
      fs::file_time_type::clock::now() - std::chrono::hours(2);
  fs::last_write_time(entry_path(dir, key_of(0)),
                      stamp - std::chrono::hours(1));
  fs::last_write_time(entry_path(dir, key_of(1)), stamp);
  fs::last_write_time(entry_path(dir, key_of(2)), stamp);

  // Key 0 is the hottest entry, but it is served from the *memory* tier —
  // the disk file is never read again after promotion.  The memory hit
  // must still refresh the disk mtime, or the LRU sweep below would evict
  // the hottest entry first.
  ex::CacheTier served = ex::CacheTier::kNone;
  ASSERT_TRUE(cache.lookup(key_of(0), &served).has_value());
  EXPECT_EQ(served, ex::CacheTier::kMemory);

  cache.store(key_of(3), payload_of(3));  // disk over budget: one eviction
  EXPECT_TRUE(fs::exists(entry_path(dir, key_of(0))))
      << "memory-hot entry must survive the mtime-LRU sweep";
  EXPECT_TRUE(fs::exists(entry_path(dir, key_of(3))));
  int cold_left = 0;
  for (std::uint64_t i = 1; i <= 2; ++i)
    if (fs::exists(entry_path(dir, key_of(i)))) ++cold_left;
  EXPECT_EQ(cold_left, 1) << "exactly one cold entry evicted";
}

TEST(DiskCache, OversizedEntryIsNotAdmitted) {
  ScratchDir dir("oversize");
  ex::DiskCacheTier tier(dir.path(), 64);  // smaller than any entry
  tier.store(key_of(1), payload_of(1, 128));
  EXPECT_FALSE(tier.load(key_of(1)).has_value());
  EXPECT_EQ(tier.stats().entries, 0u);
}

// ---------------------------------------------------------------------------
// Disk tier: two processes sharing one directory
// ---------------------------------------------------------------------------

TEST(DiskCache, TwoProcessesShareOneDirectory) {
  ScratchDir dir("fork");
  constexpr std::uint64_t kKeys = 40;

  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Child: its own tier instance over the same directory, storing the
    // odd keys and reading whatever is there.  _exit keeps gtest state
    // from double-reporting.
    ex::DiskCacheTier tier(dir.path(), 1ull << 20);
    for (std::uint64_t i = 1; i < kKeys; i += 2) {
      tier.store(key_of(i), payload_of(i));
      (void)tier.load(key_of(i / 2));
    }
    ::_exit(0);
  }
  ex::DiskCacheTier tier(dir.path(), 1ull << 20);
  for (std::uint64_t i = 0; i < kKeys; i += 2) {
    tier.store(key_of(i), payload_of(i));
    (void)tier.load(key_of(i / 2));
  }
  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);

  // Every key from both writers is present and intact.
  ex::DiskCacheTier check(dir.path(), 1ull << 20);
  for (std::uint64_t i = 0; i < kKeys; ++i) {
    const auto hit = check.load(key_of(i));
    ASSERT_TRUE(hit.has_value()) << "key " << i;
    EXPECT_EQ(*hit, payload_of(i)) << "key " << i;
  }
}

// ---------------------------------------------------------------------------
// Memory tier: true LRU
// ---------------------------------------------------------------------------

TEST(RunCacheLru, LookupRefreshesRecencyWithinAStripe) {
  // Five same-stripe entries against a ~2-per-stripe budget.  Under FIFO
  // the first-stored entry dies regardless of use; under LRU a lookup
  // keeps it alive and the eviction falls on the oldest *unused* entry.
  ex::RunCache cache(2 * 16 * 2 * sizeof(double));
  std::vector<ex::Fingerprint> same_stripe;
  const std::size_t stripe = ex::RunCache::shard_index(key_of(0));
  for (std::uint64_t i = 0; same_stripe.size() < 3; ++i)
    if (ex::RunCache::shard_index(key_of(i)) == stripe)
      same_stripe.push_back(key_of(i));

  cache.store(same_stripe[0], {0.0, 0.5});
  cache.store(same_stripe[1], {1.0, 0.5});
  ASSERT_TRUE(cache.lookup(same_stripe[0]).has_value());  // refresh [0]
  cache.store(same_stripe[2], {2.0, 0.5});  // evicts one entry

  EXPECT_TRUE(cache.lookup(same_stripe[0]).has_value())
      << "recently used entry must survive";
  EXPECT_FALSE(cache.lookup(same_stripe[1]).has_value()) << "LRU victim";
  EXPECT_TRUE(cache.lookup(same_stripe[2]).has_value());
  EXPECT_EQ(cache.stats().memory.evictions, 1u);
}

TEST(RunCacheLru, TierStatsCountHitsMissesAndEntries) {
  ex::RunCache cache(1ull << 20);
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  cache.store(key_of(1), payload_of(1));
  EXPECT_TRUE(cache.lookup(key_of(1)).has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.memory.hits, 1u);
  EXPECT_EQ(stats.memory.misses, 1u);
  EXPECT_EQ(stats.memory.entries, 1u);
  EXPECT_EQ(stats.disk.hits, 0u);  // no tier attached: all zeros
  EXPECT_EQ(stats.disk.entries, 0u);
  // Legacy aggregates stay coherent.
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(RunCacheLru, ClearDiskWipesEntriesButKeepsTheTier) {
  ScratchDir dir("cleardisk");
  ex::RunCache cache(1ull << 20);
  cache.set_disk_tier(dir.path(), 1ull << 20);
  cache.store(key_of(1), payload_of(1));
  cache.clear();
  cache.clear_disk();
  EXPECT_TRUE(cache.has_disk_tier());
  EXPECT_FALSE(cache.lookup(key_of(1)).has_value());
  cache.store(key_of(2), payload_of(2));
  cache.clear();
  EXPECT_TRUE(cache.lookup(key_of(2)).has_value()) << "tier still writable";
}
