// Tests for the execution-strategy portfolio (exec/strategy.hpp): stable
// strategy names and CLI spellings, the fixed-rule classifier, plan_family's
// contract (fixed kinds prepare RunOptions, kAuto with no planner leaves them
// untouched), the planner's never-move-off-a-cold-incumbent rule, cost-profile
// round-trips and validate-before-parse rejection, the ExecutionConfig
// deprecated-shim forwarding, the fused-wide tape-sharing width fix, the
// adaptive trajectory sweep (full-budget bit-equality, early termination with
// rank preservation, pool-width determinism), and the `--strategy auto`
// extension of the determinism matrix.

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include <charter/charter.hpp>

#include "backend/backend.hpp"
#include "core/analyzer.hpp"
#include "core/reversal.hpp"
#include "exec/batch.hpp"
#include "exec/cache.hpp"
#include "exec/strategy.hpp"
#include "sim/density_matrix.hpp"
#include "sim/trajectory.hpp"
#include "stats/stats.hpp"
#include "util/error.hpp"

namespace cb = charter::backend;
namespace cc = charter::circ;
namespace cn = charter::noise;
namespace co = charter::core;
namespace cs = charter::sim;
namespace ex = charter::exec;
using ex::StrategyKind;

namespace {

/// A 5-qubit logical program with enough depth to compile to a few dozen
/// basis gates (same shape the exec tests use).
cc::Circuit deep_logical(int rounds = 3) {
  cc::Circuit c(5);
  for (int q = 0; q < 5; ++q) c.h(q, cc::kFlagInputPrep);
  for (int r = 0; r < rounds; ++r) {
    for (int q = 0; q < 4; ++q) c.cx(q, q + 1);
    for (int q = 0; q < 5; ++q) c.t(q);
    c.cx(4, 3);
    for (int q = 0; q < 5; ++q) c.rx(q, 0.3 + 0.1 * q);
  }
  return c;
}

cb::CompiledProgram compiled_program(const cb::FakeBackend& backend,
                                     int rounds = 3) {
  return backend.compile(deep_logical(rounds));
}

/// Process-unique scratch path under gtest's temp dir.
std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + "charter_" + stem + "_" +
         std::to_string(::getpid()) + ".json";
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out << text;
}

ex::StrategyContext make_context(int width = 5, std::size_t ops = 64) {
  ex::StrategyContext ctx;
  ctx.width = width;
  ctx.ops = ops;
  ctx.jobs = 8;
  ctx.lowering = true;
  return ctx;
}

void expect_distributions_close(const std::vector<double>& a,
                                const std::vector<double>& b, double tol,
                                const std::string& label) {
  ASSERT_EQ(a.size(), b.size()) << label;
  for (std::size_t i = 0; i < a.size(); ++i)
    EXPECT_NEAR(a[i], b[i], tol) << label << " outcome " << i;
}

}  // namespace

// ---------------------------------------------------------------------------
// Names and classification
// ---------------------------------------------------------------------------

TEST(StrategyNames, StableNamesRoundTripThroughTheParser) {
  for (const StrategyKind kind :
       {StrategyKind::kAuto, StrategyKind::kDmExact, StrategyKind::kDmFused,
        StrategyKind::kDmFusedWide, StrategyKind::kTrajectory,
        StrategyKind::kCheckpointSplice}) {
    const auto parsed = ex::strategy_from_name(ex::strategy_name(kind));
    ASSERT_TRUE(parsed.has_value()) << ex::strategy_name(kind);
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(StrategyNames, CliSpellingsMapToKinds) {
  EXPECT_EQ(ex::strategy_from_name("auto"), StrategyKind::kAuto);
  EXPECT_EQ(ex::strategy_from_name("dm"), StrategyKind::kDmExact);
  EXPECT_EQ(ex::strategy_from_name("fused"), StrategyKind::kDmFused);
  EXPECT_EQ(ex::strategy_from_name("fused-wide"), StrategyKind::kDmFusedWide);
  EXPECT_EQ(ex::strategy_from_name("trajectory"), StrategyKind::kTrajectory);
  EXPECT_FALSE(ex::strategy_from_name("warp-drive").has_value());
  EXPECT_FALSE(ex::strategy_from_name("").has_value());
}

TEST(StrategyNames, AutoIsNotAnExecutionPath) {
  EXPECT_THROW(ex::strategy(StrategyKind::kAuto), charter::InvalidArgument);
}

TEST(ClassifyRun, MatchesTheFixedRules) {
  cb::RunOptions run;  // engine kAuto, opt kExact
  EXPECT_EQ(ex::classify_run(run, 5, true), StrategyKind::kDmExact);
  run.opt = cn::OptLevel::kFused;
  EXPECT_EQ(ex::classify_run(run, 5, true), StrategyKind::kDmFused);
  run.opt = cn::OptLevel::kFusedWide;
  EXPECT_EQ(ex::classify_run(run, 5, true), StrategyKind::kDmFusedWide);
  run.opt = cn::OptLevel::kExact;
  run.engine = cb::EngineKind::kTrajectory;
  EXPECT_EQ(ex::classify_run(run, 5, true), StrategyKind::kTrajectory);
  // kAuto past the density-matrix cap degrades to trajectories.
  run.engine = cb::EngineKind::kAuto;
  EXPECT_EQ(
      ex::classify_run(run, cs::DensityMatrixEngine::kMaxQubits + 1, true),
      StrategyKind::kTrajectory);
}

TEST(CostModelBuckets, WidthsAndTapeLengthsBucketAsDocumented) {
  EXPECT_EQ(ex::CostModel::qubit_bucket(5), 5);
  EXPECT_EQ(ex::CostModel::qubit_bucket(8), 8);
  EXPECT_EQ(ex::CostModel::qubit_bucket(9), 9);
  EXPECT_EQ(ex::CostModel::qubit_bucket(10), 9);
  EXPECT_EQ(ex::CostModel::qubit_bucket(11), 10);
  EXPECT_EQ(ex::CostModel::tape_bucket(1), 0);
  EXPECT_EQ(ex::CostModel::tape_bucket(2), 1);
  EXPECT_EQ(ex::CostModel::tape_bucket(1024), 10);
}

// ---------------------------------------------------------------------------
// plan_family and the planner's incumbent rule
// ---------------------------------------------------------------------------

TEST(PlanFamily, FixedKindsPrepareTheRunOptions) {
  const ex::StrategyContext ctx = make_context();

  const auto fused = ex::plan_family(nullptr, StrategyKind::kDmFused,
                                     ex::BudgetMode::kFixedBudget, ctx);
  EXPECT_EQ(fused.strategy, StrategyKind::kDmFused);
  EXPECT_EQ(fused.run.engine, cb::EngineKind::kDensityMatrix);
  EXPECT_EQ(fused.run.opt, cn::OptLevel::kFused);
  EXPECT_FALSE(fused.adaptive);

  const auto traj = ex::plan_family(nullptr, StrategyKind::kTrajectory,
                                    ex::BudgetMode::kAdaptive, ctx);
  EXPECT_EQ(traj.strategy, StrategyKind::kTrajectory);
  EXPECT_EQ(traj.run.engine, cb::EngineKind::kTrajectory);
  EXPECT_TRUE(traj.adaptive);
}

TEST(PlanFamily, FixedDmRequestPastTheCapDegradesToTrajectories) {
  const ex::StrategyContext wide =
      make_context(cs::DensityMatrixEngine::kMaxQubits + 1);
  const auto d = ex::plan_family(nullptr, StrategyKind::kDmExact,
                                 ex::BudgetMode::kFixedBudget, wide);
  EXPECT_EQ(d.strategy, StrategyKind::kTrajectory);
  EXPECT_EQ(d.run.engine, cb::EngineKind::kTrajectory);
}

TEST(PlanFamily, AutoWithoutAPlannerLeavesTheRunUntouched) {
  ex::StrategyContext ctx = make_context();
  ctx.run.opt = cn::OptLevel::kFused;
  const auto d = ex::plan_family(nullptr, StrategyKind::kAuto,
                                 ex::BudgetMode::kFixedBudget, ctx);
  EXPECT_EQ(d.strategy, StrategyKind::kDmFused);  // reported, not rewritten
  EXPECT_EQ(d.run.engine, ctx.run.engine);
  EXPECT_EQ(d.run.opt, ctx.run.opt);
  EXPECT_FALSE(d.adaptive);
}

TEST(PlanFamily, AdaptiveArmsOnlyForTrajectoryFamilies) {
  ex::StrategyContext ctx = make_context();
  const auto dm = ex::plan_family(nullptr, StrategyKind::kAuto,
                                  ex::BudgetMode::kAdaptive, ctx);
  EXPECT_FALSE(dm.adaptive);  // DM family: nothing to early-terminate
  ctx.run.engine = cb::EngineKind::kTrajectory;
  const auto traj = ex::plan_family(nullptr, StrategyKind::kAuto,
                                    ex::BudgetMode::kAdaptive, ctx);
  EXPECT_TRUE(traj.adaptive);
}

TEST(StrategyPlanner, MovesOffTheIncumbentOnlyWithBothSidesMeasured) {
  const ex::StrategyContext ctx = make_context();
  ex::StrategyPlanner planner;

  // Cold planner: exactly the fixed rule.
  EXPECT_EQ(planner.plan(StrategyKind::kAuto, ex::BudgetMode::kFixedBudget, ctx)
                .strategy,
            StrategyKind::kDmExact);

  // A measured challenger alone is not enough — the incumbent is unmeasured,
  // so the comparison would be prior-vs-measurement apples and oranges.
  planner.observe(StrategyKind::kDmFused, ctx.width, ctx.ops, 100.0);
  EXPECT_EQ(planner.plan(StrategyKind::kAuto, ex::BudgetMode::kFixedBudget, ctx)
                .strategy,
            StrategyKind::kDmExact);

  // Both sides measured: the cheaper same-family tape level wins.
  planner.observe(StrategyKind::kDmExact, ctx.width, ctx.ops, 1000.0);
  const auto d =
      planner.plan(StrategyKind::kAuto, ex::BudgetMode::kFixedBudget, ctx);
  EXPECT_EQ(d.strategy, StrategyKind::kDmFused);
  EXPECT_DOUBLE_EQ(d.predicted_ns, 100.0);

  // kFixedBudget never crosses engine families, even when the model says
  // trajectories are faster — that trade is reserved for kAdaptive.
  planner.observe(StrategyKind::kTrajectory, ctx.width, ctx.ops, 1.0);
  EXPECT_EQ(planner.plan(StrategyKind::kAuto, ex::BudgetMode::kFixedBudget, ctx)
                .strategy,
            StrategyKind::kDmFused);
  EXPECT_EQ(planner.plan(StrategyKind::kAuto, ex::BudgetMode::kAdaptive, ctx)
                .strategy,
            StrategyKind::kTrajectory);
}

// ---------------------------------------------------------------------------
// Cost-profile persistence
// ---------------------------------------------------------------------------

TEST(CostProfile, RoundTripPreservesEveryPrediction) {
  ex::StrategyPlanner planner;
  planner.observe(StrategyKind::kDmExact, 5, 64, 1234.5);
  planner.observe(StrategyKind::kDmExact, 5, 64, 2000.0);  // EWMA folds in
  planner.observe(StrategyKind::kTrajectory, 9, 100, 77.25);
  planner.observe(StrategyKind::kCheckpointSplice, 5, 64, 8.5);

  const std::string path = temp_path("profile_roundtrip");
  planner.save_profile(path);

  ex::StrategyPlanner loaded;
  loaded.load_profile(path);
  EXPECT_DOUBLE_EQ(loaded.predicted_ns(StrategyKind::kDmExact, 5, 64),
                   planner.predicted_ns(StrategyKind::kDmExact, 5, 64));
  EXPECT_DOUBLE_EQ(loaded.predicted_ns(StrategyKind::kTrajectory, 9, 100),
                   planner.predicted_ns(StrategyKind::kTrajectory, 9, 100));
  EXPECT_DOUBLE_EQ(loaded.predicted_ns(StrategyKind::kCheckpointSplice, 5, 64),
                   planner.predicted_ns(StrategyKind::kCheckpointSplice, 5,
                                        64));
  EXPECT_EQ(loaded.snapshot().observations(),
            planner.snapshot().observations());
  EXPECT_EQ(loaded.snapshot().cells(), planner.snapshot().cells());
  // An unobserved shape stays unobserved after the round trip.
  EXPECT_DOUBLE_EQ(loaded.predicted_ns(StrategyKind::kDmFused, 5, 64), 0.0);
  std::remove(path.c_str());
}

TEST(CostProfile, CorruptProfilesAreRejectedWhole) {
  const auto rejects = [](const std::string& text) {
    EXPECT_THROW(ex::CostModel::from_json(text), charter::InvalidArgument)
        << text;
  };
  rejects("not json at all");
  rejects("[1,2,3]");  // wrong top-level shape
  rejects(R"({"magic":"NOPE","version":1,"cells":[]})");
  rejects(R"({"magic":"CHCP","version":999,"cells":[]})");
  rejects(R"({"magic":"CHCP","version":1,"cells":42})");
  rejects(R"({"magic":"CHCP","version":1,"cells":[)"
          R"({"strategy":"warp","qubits":5,"tape":6,"ewma_ns":1,"count":1}]})");
  rejects(R"({"magic":"CHCP","version":1,"cells":[)"
          R"({"strategy":"dm_exact","qubits":5,"tape":6,"ewma_ns":-1,)"
          R"("count":1}]})");
  rejects(R"({"magic":"CHCP","version":1,"cells":[)"
          R"({"strategy":"dm_exact","qubits":5,"tape":6,"ewma_ns":1,)"
          R"("count":0}]})");
  // Duplicate cells would silently merge; the profile is rejected instead.
  rejects(R"({"magic":"CHCP","version":1,"cells":[)"
          R"({"strategy":"dm_exact","qubits":5,"tape":6,"ewma_ns":1,"count":1},)"
          R"({"strategy":"dm_exact","qubits":5,"tape":6,"ewma_ns":2,)"
          R"("count":1}]})");
}

TEST(CostProfile, LoadToleratesAMissingFileButNotACorruptOne) {
  ex::StrategyPlanner planner;
  EXPECT_NO_THROW(
      planner.load_profile(temp_path("profile_never_written")));  // cold start

  const std::string path = temp_path("profile_corrupt");
  write_file(path, "{\"magic\":\"CHCP\",\"version\":1,\"cells\":");  // cut off
  EXPECT_THROW(planner.load_profile(path), charter::InvalidArgument);
  // The failed load commits nothing.
  EXPECT_EQ(planner.snapshot().observations(), 0u);
  std::remove(path.c_str());
}

TEST(CostProfile, SessionSeedsFromAndPersistsToItsProfile) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const std::string path = temp_path("profile_session");

  {
    charter::SessionConfig config;
    config.execution().cost_profile(path);
    const charter::Session session(backend, config);
    session.planner().observe(StrategyKind::kDmExact, 5, 64, 500.0);
  }  // destructor persists the model

  charter::SessionConfig config;
  config.execution().cost_profile(path);
  const charter::Session session(backend, config);
  EXPECT_DOUBLE_EQ(session.planner().predicted_ns(StrategyKind::kDmExact, 5,
                                                  64),
                   500.0);
  std::remove(path.c_str());
}

TEST(CostProfile, SessionConstructionRejectsACorruptProfile) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const std::string path = temp_path("profile_session_corrupt");
  write_file(path, "definitely not a cost profile");
  charter::SessionConfig config;
  config.execution().cost_profile(path);
  EXPECT_THROW(charter::Session(backend, config), charter::InvalidArgument);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// ExecutionConfig deprecated shims
// ---------------------------------------------------------------------------

#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"
TEST(ExecutionConfigShims, DeprecatedFlatSettersForwardToExecution) {
  charter::SessionConfig config;
  config.threads(3)
      .workers(2)
      .worker_exe("/bin/true")
      .fused(true)
      .common_random_numbers(true)
      .checkpointing(false)
      .caching(false)
      .checkpoint_memory_bytes(1u << 20)
      .cache_dir("/tmp/charter-shim-test")
      .cache_disk_bytes(1u << 22);

  EXPECT_EQ(config.execution().threads(), 3);
  EXPECT_EQ(config.execution().workers(), 2);
  EXPECT_EQ(config.execution().worker_exe(), "/bin/true");
  EXPECT_TRUE(config.execution().fused());
  EXPECT_TRUE(config.execution().common_random_numbers());
  EXPECT_FALSE(config.execution().checkpointing());
  EXPECT_FALSE(config.execution().caching());
  EXPECT_EQ(config.execution().checkpoint_memory_bytes(), 1u << 20);
  EXPECT_EQ(config.execution().cache_dir(), "/tmp/charter-shim-test");
  EXPECT_EQ(config.execution().cache_disk_bytes(), 1u << 22);

  // The deprecated flat getters read through to the same state.
  EXPECT_EQ(config.threads(), 3);
  EXPECT_EQ(config.workers(), 2);
  EXPECT_TRUE(config.fused());
  EXPECT_TRUE(config.common_random_numbers());
  EXPECT_FALSE(config.checkpointing());
  EXPECT_FALSE(config.caching());
  EXPECT_EQ(config.checkpoint_memory_bytes(), 1u << 20);
  EXPECT_EQ(config.cache_dir(), "/tmp/charter-shim-test");
  EXPECT_EQ(config.cache_disk_bytes(), 1u << 22);
}
#pragma GCC diagnostic pop

// ---------------------------------------------------------------------------
// Fused-wide tape sharing: width is part of the group key
// ---------------------------------------------------------------------------

TEST(FusedWideGrouping, MixedFusionWidthJobsNeverShareATape) {
  // A width-2 and a width-3 fused-wide run lower to different tapes; before
  // the tape key mixed the resolved width, a mixed batch could splice one
  // job's suffix into a tape fused at the other width.  Every job must match
  // its own standalone run to the fusion tolerance.
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  ASSERT_GE(eligible.size(), 4u);

  std::vector<cb::CompiledProgram> reversed;
  std::vector<ex::AnalysisJob> jobs;
  reversed.reserve(4);
  for (std::size_t k = 0; k < 4; ++k) {
    const std::size_t g = eligible[k];
    cb::CompiledProgram rev = program;
    rev.physical = co::insert_reversed_pairs(program.physical, g, 2, true);
    reversed.push_back(std::move(rev));
    cb::RunOptions run;
    run.shots = 4096;
    run.seed = 11 + g;
    run.opt = cn::OptLevel::kFusedWide;
    run.fusion_width = (k % 2 == 0) ? 2 : 3;
    jobs.push_back({&reversed.back(), run, g + 1});
  }

  ex::BatchOptions options;
  options.caching = false;
  options.threads = 2;
  ex::RunCache::global().clear();
  const ex::BatchRunner runner(backend, options);
  const std::vector<std::vector<double>> results =
      runner.run(jobs, &program);
  ASSERT_EQ(results.size(), jobs.size());

  for (std::size_t k = 0; k < jobs.size(); ++k)
    expect_distributions_close(
        results[k], backend.run(reversed[k], jobs[k].run), 1e-12,
        "fusion_width=" + std::to_string(jobs[k].run.fusion_width) + " job " +
            std::to_string(k));
}

// ---------------------------------------------------------------------------
// Adaptive trajectory sweep
// ---------------------------------------------------------------------------

namespace {

struct AdaptiveFixture {
  cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  cb::CompiledProgram program;
  std::vector<cb::CompiledProgram> reversed;
  std::vector<ex::AdaptiveJob> jobs;
  std::vector<double> original;

  explicit AdaptiveFixture(int trajectories, std::size_t gates = 4)
      : program(compiled_program(backend, 2)) {
    const std::vector<std::size_t> eligible =
        co::reversible_ops(program.physical, true);
    EXPECT_GE(eligible.size(), gates);
    cb::RunOptions base_run;
    base_run.shots = 0;  // engine-level distributions
    base_run.engine = cb::EngineKind::kTrajectory;
    base_run.trajectories = trajectories;
    base_run.seed = 5;
    original = backend.run(program, base_run);
    // Spread the insertion points so the impact estimates separate.
    const std::size_t stride = eligible.size() / gates;
    reversed.reserve(gates);
    for (std::size_t k = 0; k < gates; ++k) {
      const std::size_t g = eligible[k * stride];
      cb::CompiledProgram rev = program;
      rev.physical = co::insert_reversed_pairs(program.physical, g, 2, true);
      reversed.push_back(std::move(rev));
      cb::RunOptions run = base_run;
      run.seed = base_run.seed + g;
      jobs.push_back({&reversed.back(), run});
    }
  }
};

}  // namespace

TEST(AdaptiveSweep, FullBudgetMatchesBackendRunBitExactly) {
  // Two groups total with min_groups = 2: the sequential test can never fire
  // before the budget is exhausted, so every distribution must be
  // bit-identical to a standalone full-budget run.
  AdaptiveFixture fx(2 * cs::kTrajectoryGroupSize);
  ex::AdaptiveOptions options;
  options.threads = 2;
  const ex::AdaptiveResult result = ex::run_adaptive_trajectory_sweep(
      fx.backend, fx.jobs, fx.original, options);

  EXPECT_EQ(result.trajectories_executed, result.trajectories_budgeted);
  EXPECT_EQ(result.gates_settled_early, 0u);
  ASSERT_EQ(result.distributions.size(), fx.jobs.size());
  for (std::size_t k = 0; k < fx.jobs.size(); ++k) {
    const std::vector<double> standalone =
        fx.backend.run(fx.reversed[k], fx.jobs[k].run);
    ASSERT_EQ(result.distributions[k].size(), standalone.size());
    for (std::size_t i = 0; i < standalone.size(); ++i)
      EXPECT_EQ(result.distributions[k][i], standalone[i])
          << "job " << k << " outcome " << i;
  }
}

TEST(AdaptiveSweep, EarlyTerminationSavesTrajectoriesAndKeepsTheRanking) {
  const int trajectories = 10 * cs::kTrajectoryGroupSize;
  AdaptiveFixture fx(trajectories);

  // Full-budget reference ranking (what kFixedBudget would report).
  std::vector<double> full_tvds;
  for (std::size_t k = 0; k < fx.jobs.size(); ++k)
    full_tvds.push_back(charter::stats::tvd(
        fx.backend.run(fx.reversed[k], fx.jobs[k].run), fx.original));
  std::vector<std::size_t> full_rank(fx.jobs.size());
  std::iota(full_rank.begin(), full_rank.end(), std::size_t{0});
  std::stable_sort(full_rank.begin(), full_rank.end(),
                   [&](std::size_t a, std::size_t b) {
                     return full_tvds[a] > full_tvds[b];
                   });

  ex::AdaptiveOptions options;
  options.threads = 2;
  options.z = 2.0;
  const ex::AdaptiveResult result = ex::run_adaptive_trajectory_sweep(
      fx.backend, fx.jobs, fx.original, options);

  EXPECT_EQ(result.trajectories_budgeted,
            fx.jobs.size() * static_cast<std::size_t>(trajectories));
  EXPECT_LT(result.trajectories_executed, result.trajectories_budgeted);
  EXPECT_GE(result.gates_settled_early, 1u);

  std::vector<double> adaptive_tvds;
  for (const std::vector<double>& dist : result.distributions)
    adaptive_tvds.push_back(charter::stats::tvd(dist, fx.original));
  std::vector<std::size_t> adaptive_rank(fx.jobs.size());
  std::iota(adaptive_rank.begin(), adaptive_rank.end(), std::size_t{0});
  std::stable_sort(adaptive_rank.begin(), adaptive_rank.end(),
                   [&](std::size_t a, std::size_t b) {
                     return adaptive_tvds[a] > adaptive_tvds[b];
                   });
  EXPECT_EQ(adaptive_rank, full_rank);
}

TEST(AdaptiveSweep, ResultsAreIdenticalAtEveryPoolWidth) {
  // Stopping decisions happen on the coordinating thread from index-ordered
  // folds, so the outcome — distributions and savings — cannot depend on
  // how many workers executed the groups.
  const int trajectories = 6 * cs::kTrajectoryGroupSize;
  AdaptiveFixture narrow_fx(trajectories);
  AdaptiveFixture wide_fx(trajectories);

  ex::AdaptiveOptions narrow;
  narrow.threads = 1;
  const ex::AdaptiveResult a = ex::run_adaptive_trajectory_sweep(
      narrow_fx.backend, narrow_fx.jobs, narrow_fx.original, narrow);
  ex::AdaptiveOptions wide;
  wide.threads = 4;
  const ex::AdaptiveResult b = ex::run_adaptive_trajectory_sweep(
      wide_fx.backend, wide_fx.jobs, wide_fx.original, wide);

  EXPECT_EQ(a.trajectories_executed, b.trajectories_executed);
  EXPECT_EQ(a.gates_settled_early, b.gates_settled_early);
  ASSERT_EQ(a.distributions.size(), b.distributions.size());
  for (std::size_t k = 0; k < a.distributions.size(); ++k) {
    ASSERT_EQ(a.distributions[k].size(), b.distributions[k].size());
    for (std::size_t i = 0; i < a.distributions[k].size(); ++i)
      EXPECT_EQ(a.distributions[k][i], b.distributions[k][i])
          << "job " << k << " outcome " << i;
  }
}

TEST(AdaptiveSweep, AnalyzerAdaptiveBudgetPreservesTheTopGate) {
  // End to end through the analyzer: kAdaptive must reduce executed
  // trajectories, account for the savings in exec_stats, and leave the
  // top-ranked gate unchanged vs the fixed-budget analysis.
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);

  co::CharterOptions fixed;
  fixed.reversals = 5;
  // Keep the virtual RZ gates in the sweep: their near-zero impact sits far
  // below the noisy gates', so the sequential test has real rank gaps to
  // separate — mirroring the production shape where adaptive budgets pay.
  fixed.skip_rz = false;
  fixed.max_gates = 6;
  fixed.common_random_numbers = true;
  fixed.run.shots = 0;
  fixed.run.engine = cb::EngineKind::kTrajectory;
  fixed.run.trajectories = 24 * cs::kTrajectoryGroupSize;
  fixed.run.seed = 7;
  fixed.exec.threads = 2;
  fixed.exec.caching = false;

  co::CharterOptions adaptive = fixed;
  adaptive.budget = ex::BudgetMode::kAdaptive;

  ex::RunCache::global().clear();
  const co::CharterReport fixed_report =
      co::CharterAnalyzer(backend, fixed).analyze(program);
  const co::CharterReport adaptive_report =
      co::CharterAnalyzer(backend, adaptive).analyze(program);
  ex::RunCache::global().clear();

  // Fixed budgets never report adaptive accounting.
  EXPECT_EQ(fixed_report.exec_stats.trajectories_budgeted, 0u);
  EXPECT_EQ(fixed_report.exec_stats.trajectories_executed, 0u);
  EXPECT_EQ(fixed_report.exec_stats.gates_settled_early, 0u);

  const std::size_t budget =
      adaptive_report.impacts.size() *
      static_cast<std::size_t>(adaptive.run.trajectories);
  EXPECT_EQ(adaptive_report.exec_stats.trajectories_budgeted, budget);
  EXPECT_LT(adaptive_report.exec_stats.trajectories_executed, budget);
  EXPECT_GE(adaptive_report.exec_stats.gates_settled_early, 1u);

  ASSERT_EQ(adaptive_report.impacts.size(), fixed_report.impacts.size());
  // The original run is untouched by the budget mode.
  ASSERT_EQ(adaptive_report.original_distribution.size(),
            fixed_report.original_distribution.size());
  for (std::size_t i = 0; i < fixed_report.original_distribution.size(); ++i)
    EXPECT_EQ(adaptive_report.original_distribution[i],
              fixed_report.original_distribution[i]);
  const auto fixed_sorted = fixed_report.sorted_by_impact();
  const auto adaptive_sorted = adaptive_report.sorted_by_impact();
  EXPECT_EQ(adaptive_sorted.front().op_index, fixed_sorted.front().op_index);
}

// ---------------------------------------------------------------------------
// Determinism matrix: --strategy auto under kFixedBudget
// ---------------------------------------------------------------------------

namespace {

struct MatrixRun {
  co::CharterReport cold_report;
  co::CharterReport warm_report;
};

MatrixRun analyze_at_width(const cb::FakeBackend& backend,
                           const cb::CompiledProgram& program,
                           co::CharterOptions options, int threads) {
  options.exec.threads = threads;
  options.exec.caching = true;
  ex::RunCache::global().clear();
  const co::CharterAnalyzer analyzer(backend, options);
  MatrixRun out;
  out.cold_report = analyzer.analyze(program);
  out.warm_report = analyzer.analyze(program);  // all jobs from cache
  ex::RunCache::global().clear();
  return out;
}

void expect_reports_identical(const co::CharterReport& a,
                              const co::CharterReport& b,
                              const std::string& label) {
  ASSERT_EQ(a.impacts.size(), b.impacts.size()) << label;
  ASSERT_EQ(a.original_distribution.size(), b.original_distribution.size())
      << label;
  for (std::size_t i = 0; i < a.original_distribution.size(); ++i)
    EXPECT_EQ(a.original_distribution[i], b.original_distribution[i])
        << label << " outcome " << i;
  for (std::size_t k = 0; k < a.impacts.size(); ++k) {
    EXPECT_EQ(a.impacts[k].op_index, b.impacts[k].op_index) << label;
    EXPECT_EQ(a.impacts[k].tvd, b.impacts[k].tvd) << label << " gate " << k;
  }
}

}  // namespace

TEST(DeterminismMatrix, AutoStrategyIsBitIdenticalToFixedDm) {
  // Under kFixedBudget a cold planner never moves off the incumbent (the
  // challengers are never executed, hence never measured), so `--strategy
  // auto` must reproduce the fixed dm reference bit-for-bit at every thread
  // and worker count — cold and warm.
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);

  co::CharterOptions dm;
  dm.reversals = 2;
  dm.run.shots = 4096;
  dm.run.seed = 2022;
  dm.strategy = StrategyKind::kDmExact;
  const MatrixRun reference = analyze_at_width(backend, program, dm, 1);

  for (const int threads : {1, 2, 8}) {
    for (const int workers : {0, 2}) {
      co::CharterOptions auto_options = dm;
      auto_options.strategy = StrategyKind::kAuto;
      auto_options.exec.workers = workers;
      ex::StrategyPlanner planner;  // fresh and cold, like a new session
      auto_options.exec.planner = &planner;
      const MatrixRun run =
          analyze_at_width(backend, program, auto_options, threads);
      const std::string label = "auto @threads=" + std::to_string(threads) +
                                " workers=" + std::to_string(workers);
      expect_reports_identical(reference.cold_report, run.cold_report,
                               label + " cold");
      expect_reports_identical(reference.warm_report, run.warm_report,
                               label + " warm");
      // The planner classified and measured the executed jobs.
      const ex::BatchRunner::Stats& stats = run.cold_report.exec_stats;
      EXPECT_EQ(stats.strategy_jobs.dm_exact +
                    stats.strategy_jobs.checkpoint_splice,
                stats.jobs)
          << label;
      EXPECT_GT(stats.actual_ns, 0.0) << label;
      EXPECT_GT(planner.snapshot().observations(), 0u) << label;
    }
  }
}
