// The charterd service layer: wire protocol, fair-share scheduling,
// admission control, and end-to-end agreement with the library facade.
//
// Service is deliberately socket-free (one line in, one line out), so
// most of this suite drives it with strings; one SocketServer section
// exercises the real AF_UNIX path including the hangup-cancels-jobs
// contract.  The daemon binary itself is covered by the
// tests/service_smoke.sh CTest entry.

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include <charter/charter.hpp>

#include "algos/registry.hpp"
#include "characterize/report_io.hpp"
#include "core/report_io.hpp"
#include "service/client.hpp"
#include "service/json.hpp"
#include "service/protocol.hpp"
#include "service/scheduler.hpp"
#include "service/server.hpp"

namespace cb = charter::backend;
namespace co = charter::core;
namespace cs = charter::service;
namespace ex = charter::exec;
namespace fs = std::filesystem;

namespace {

/// Response helpers: every handle_line result must itself parse.
cs::JsonValue parsed(const std::string& response) {
  return cs::parse_json(response);
}

bool ok(const cs::JsonValue& r) {
  const cs::JsonValue* v = r.find("ok");
  return v != nullptr && v->is_bool() && v->boolean;
}

std::string error_code(const cs::JsonValue& r) {
  const cs::JsonValue* e = r.find("error");
  if (e == nullptr) return "";
  const cs::JsonValue* code = e->find("code");
  return code != nullptr && code->is_string() ? code->string : "";
}

std::uint64_t job_id(const cs::JsonValue& r) {
  const cs::JsonValue* v = r.find("job");
  return v != nullptr && v->is_number()
             ? static_cast<std::uint64_t>(v->number)
             : 0;
}

std::string status_of(const cs::JsonValue& r) {
  const cs::JsonValue* v = r.find("status");
  return v != nullptr && v->is_string() ? v->string : "";
}

/// One backend + paused-or-running scheduler + service, wired like
/// charterd does it.
struct Harness {
  explicit Harness(cs::SchedulerOptions sched_options = {},
                   cs::ServiceLimits limits = {},
                   charter::SessionConfig base = charter::SessionConfig())
      : backend(cb::FakeBackend::lagos()),
        scheduler(backend, sched_options),
        service(backend, base, limits, scheduler) {}

  std::string handle(const std::string& line, std::uint64_t connection = 1) {
    return service.handle_line(line, connection);
  }

  cb::FakeBackend backend;
  cs::Scheduler scheduler;
  cs::Service service;
};

/// Small, fast submit: 2 analyzed gates, exact distributions.
const char* kSmallSubmit =
    "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"shots\":0,\"max_gates\":2}";

std::string scratch_dir(const std::string& tag) {
  const std::string path =
      (fs::temp_directory_path() /
       ("charter_service_test_" + tag + "_" + std::to_string(::getpid())))
          .string();
  fs::remove_all(path);
  return path;
}

}  // namespace

// ---------------------------------------------------------------------------
// Protocol: every malformed request is a structured error, not a crash
// ---------------------------------------------------------------------------

TEST(ServiceProtocol, MalformedJsonIsAParseError) {
  Harness h;
  for (const char* bad : {"{not json", "\"just a string\"", "{} trailing",
                          "{\"op\":\"ping\"", "[1,2,3"}) {
    const cs::JsonValue r = parsed(h.handle(bad));
    EXPECT_FALSE(ok(r)) << bad;
    EXPECT_TRUE(error_code(r) == "parse_error" ||
                error_code(r) == "bad_request")
        << bad << " -> " << error_code(r);
  }
}

TEST(ServiceProtocol, UnknownOpAndUnknownFieldAreNamed) {
  Harness h;
  const cs::JsonValue r1 = parsed(h.handle("{\"op\":\"frobnicate\"}"));
  EXPECT_EQ(error_code(r1), "unknown_op");

  // A misspelled field must be rejected, not silently ignored.
  const cs::JsonValue r2 = parsed(h.handle(
      "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"detatch\":true}"));
  EXPECT_EQ(error_code(r2), "unknown_field");
  const cs::JsonValue* e = r2.find("error");
  ASSERT_NE(e, nullptr);
  const cs::JsonValue* msg = e->find("message");
  ASSERT_NE(msg, nullptr);
  EXPECT_NE(msg->string.find("detatch"), std::string::npos)
      << "error must name the offending field";
}

TEST(ServiceProtocol, TypeAndShapeViolationsAreBadRequests) {
  Harness h;
  for (const char* bad : {
           "{\"op\":\"submit\"}",                             // no program
           "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"qasm\":\"x\"}",
           "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"shots\":\"many\"}",
           "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"shots\":-4}",
           "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"tenant\":\"\"}",
           "{\"op\":\"status\"}",                             // no job
           "{\"op\":\"status\",\"job\":0}",
           "{\"op\":\"status\",\"job\":1.5}",
           "{\"op\":42}",
       }) {
    const cs::JsonValue r = parsed(h.handle(bad));
    EXPECT_EQ(error_code(r), "bad_request") << bad;
  }
}

TEST(ServiceProtocol, OversizedRequestsAreRejectedStructurally) {
  cs::ServiceLimits limits;
  limits.max_qasm_bytes = 64;
  Harness h({}, limits);
  const std::string big(200, 'x');
  const cs::JsonValue r =
      parsed(h.handle("{\"op\":\"submit\",\"qasm\":\"" + big + "\"}"));
  EXPECT_EQ(error_code(r), "too_large");

  // Line-length cap applies before JSON parsing.
  cs::ServiceLimits tiny;
  tiny.max_line_bytes = 32;
  EXPECT_THROW(cs::parse_request(std::string(64, ' '), tiny),
               cs::ProtocolError);
}

TEST(ServiceProtocol, QubitCapAndUnknownBenchmark) {
  cs::ServiceLimits limits;
  limits.max_qubits = 2;
  Harness h({}, limits);
  EXPECT_EQ(error_code(parsed(h.handle(
                "{\"op\":\"submit\",\"benchmark\":\"qft3\"}"))),
            "too_large");
  EXPECT_EQ(error_code(parsed(h.handle(
                "{\"op\":\"submit\",\"benchmark\":\"nope\"}"))),
            "not_found");
}

TEST(ServiceProtocol, UnknownJobsAndPrematureFetches) {
  Harness h;
  EXPECT_EQ(error_code(parsed(h.handle("{\"op\":\"status\",\"job\":99}"))),
            "not_found");
  // A queued (paused) job has no report yet.
  cs::SchedulerOptions paused;
  paused.start_paused = true;
  Harness hp(paused);
  const std::uint64_t id = job_id(parsed(hp.handle(kSmallSubmit)));
  ASSERT_GT(id, 0u);
  EXPECT_EQ(error_code(parsed(hp.handle(
                "{\"op\":\"fetch\",\"job\":" + std::to_string(id) + "}"))),
            "not_found");
}

TEST(ServiceProtocol, PingAndStatsRoundTrip) {
  Harness h;
  EXPECT_TRUE(ok(parsed(h.handle("{\"op\":\"ping\"}"))));
  const cs::JsonValue stats = parsed(h.handle("{\"op\":\"stats\"}"));
  ASSERT_TRUE(ok(stats));
  ASSERT_NE(stats.find("scheduler"), nullptr);
  ASSERT_NE(stats.find("cache"), nullptr);
  EXPECT_NE(stats.find("cache")->find("memory"), nullptr);
  EXPECT_NE(stats.find("cache")->find("disk"), nullptr);
}

// ---------------------------------------------------------------------------
// Scheduler: fairness, admission, cancellation
// ---------------------------------------------------------------------------

namespace {

/// Submits \p count small jobs for \p tenant through the service.
std::vector<std::uint64_t> submit_many(Harness& h, const std::string& tenant,
                                       int count) {
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < count; ++i) {
    const cs::JsonValue r = parsed(
        h.handle("{\"op\":\"submit\",\"tenant\":\"" + tenant +
                 "\",\"benchmark\":\"qft3\",\"shots\":0,\"max_gates\":1}"));
    EXPECT_TRUE(ok(r));
    ids.push_back(job_id(r));
  }
  return ids;
}

}  // namespace

TEST(ServiceScheduler, RoundRobinInterleavesTenantsNotSubmissionOrder) {
  cs::SchedulerOptions options;
  options.start_paused = true;
  options.threads = 2;
  Harness h(options);

  std::mutex mu;
  std::vector<std::string> order;
  h.scheduler.on_job_start = [&](const cs::JobSnapshot& s) {
    const std::lock_guard<std::mutex> lock(mu);
    order.push_back(s.tenant);
  };

  // Tenant "bulk" floods first; "interactive" arrives second.  FIFO would
  // run all six bulk jobs before interactive's first.
  const auto bulk = submit_many(h, "bulk", 6);
  const auto interactive = submit_many(h, "interactive", 3);
  h.scheduler.set_paused(false);
  for (const std::uint64_t id : bulk) h.scheduler.await(id);
  for (const std::uint64_t id : interactive) h.scheduler.await(id);

  const std::vector<std::string> expected = {
      "bulk", "interactive", "bulk", "interactive", "bulk",
      "interactive", "bulk", "bulk", "bulk"};
  EXPECT_EQ(order, expected);
}

TEST(ServiceScheduler, QueueFullIsAStructuredRejection) {
  cs::SchedulerOptions options;
  options.start_paused = true;
  options.max_queued_jobs = 2;
  cs::ServiceLimits limits;
  limits.max_queued_jobs = 2;
  Harness h(options, limits);
  EXPECT_TRUE(ok(parsed(h.handle(kSmallSubmit))));
  EXPECT_TRUE(ok(parsed(h.handle(kSmallSubmit))));
  const cs::JsonValue r = parsed(h.handle(kSmallSubmit));
  EXPECT_FALSE(ok(r));
  EXPECT_EQ(error_code(r), "queue_full");
  // The rejection did not consume anything: both admitted jobs finish.
  h.scheduler.set_paused(false);
  EXPECT_EQ(h.scheduler.await(1).phase, cs::JobPhase::kDone);
  EXPECT_EQ(h.scheduler.await(2).phase, cs::JobPhase::kDone);
}

TEST(ServiceScheduler, DrainRejectsNewWorkButFinishesAdmitted) {
  cs::SchedulerOptions options;
  options.start_paused = true;
  Harness h(options);
  const std::uint64_t id = job_id(parsed(h.handle(kSmallSubmit)));
  h.scheduler.request_drain();  // also unpauses: a paused drain would hang
  const cs::JsonValue rejected = parsed(h.handle(kSmallSubmit));
  EXPECT_EQ(error_code(rejected), "shutting_down");
  h.scheduler.wait_until_drained();
  EXPECT_EQ(h.scheduler.snapshot(id).phase, cs::JobPhase::kDone)
      << "admitted work must complete during a drain";
}

TEST(ServiceScheduler, CancelledQueuedJobNeverRunsAndCachesNothing) {
  ex::RunCache::global().clear();
  cs::SchedulerOptions options;
  options.start_paused = true;
  Harness h(options);
  const std::uint64_t id = job_id(parsed(h.handle(kSmallSubmit)));
  const cs::JsonValue r = parsed(
      h.handle("{\"op\":\"cancel\",\"job\":" + std::to_string(id) + "}"));
  EXPECT_TRUE(ok(r));
  h.scheduler.set_paused(false);
  EXPECT_EQ(h.scheduler.await(id).phase, cs::JobPhase::kCancelled);
  EXPECT_EQ(ex::RunCache::global().stats().entries, 0u)
      << "a job that never ran must leave no cache entries";
}

TEST(ServiceScheduler, ConnectionCloseCancelsAttachedJobsOnly) {
  cs::SchedulerOptions options;
  options.start_paused = true;
  Harness h(options);
  const std::uint64_t attached =
      job_id(parsed(h.handle(kSmallSubmit, /*connection=*/7)));
  const cs::JsonValue detached_resp = parsed(h.handle(
      "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"shots\":0,"
      "\"max_gates\":1,\"detach\":true}",
      /*connection=*/7));
  const std::uint64_t detached = job_id(detached_resp);

  h.scheduler.connection_closed(7);
  h.scheduler.set_paused(false);
  EXPECT_EQ(h.scheduler.await(attached).phase, cs::JobPhase::kCancelled);
  EXPECT_EQ(h.scheduler.await(detached).phase, cs::JobPhase::kDone)
      << "detached jobs survive their submitter's hangup";
}

// ---------------------------------------------------------------------------
// End to end: daemon-served reports are the library's reports, bit for bit
// ---------------------------------------------------------------------------

TEST(ServiceEndToEnd, FetchedReportIsBitIdenticalToDirectSession) {
  ex::RunCache::global().clear();
  Harness h;
  const cs::JsonValue submitted = parsed(h.handle(
      "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"shots\":4096,"
      "\"seed\":77,\"reversals\":3}"));
  ASSERT_TRUE(ok(submitted));
  const std::uint64_t id = job_id(submitted);
  ASSERT_EQ(status_of(parsed(h.handle(
                "{\"op\":\"wait\",\"job\":" + std::to_string(id) + "}"))),
            "done");
  const std::string fetched =
      h.handle("{\"op\":\"fetch\",\"job\":" + std::to_string(id) + "}");
  const co::GoldenReport daemon_report = co::report_from_json(
      cs::Client::extract_report_json(fetched));

  // The same analysis through the public facade, same backend model.
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  charter::Session session(
      backend,
      charter::SessionConfig().shots(4096).seed(77).reversals(3));
  const co::CharterReport direct = session.analyze(
      session.compile(charter::algos::find_benchmark("qft3").build()));

  ASSERT_EQ(daemon_report.report.impacts.size(), direct.impacts.size());
  for (std::size_t k = 0; k < direct.impacts.size(); ++k) {
    EXPECT_EQ(daemon_report.report.impacts[k].op_index,
              direct.impacts[k].op_index);
    EXPECT_EQ(daemon_report.report.impacts[k].tvd, direct.impacts[k].tvd)
        << "impact " << k << " must be bit-identical";
  }
  ASSERT_EQ(daemon_report.report.original_distribution.size(),
            direct.original_distribution.size());
  for (std::size_t i = 0; i < direct.original_distribution.size(); ++i)
    EXPECT_EQ(daemon_report.report.original_distribution[i],
              direct.original_distribution[i]);
}

TEST(ServiceEndToEnd, WarmDiskTierServesRestartWithZeroSimulations) {
  const std::string dir = scratch_dir("warm");
  ex::RunCache::global().clear();
  ex::RunCache::global().set_disk_tier(dir);
  ex::RunCache::global().clear_disk();

  const char* submit =
      "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"shots\":0,"
      "\"seed\":5,\"max_gates\":3}";
  const auto run_once = [&]() -> co::GoldenReport {
    Harness h;
    const std::uint64_t id = job_id(parsed(h.handle(submit)));
    h.handle("{\"op\":\"wait\",\"job\":" + std::to_string(id) + "}");
    return co::report_from_json(cs::Client::extract_report_json(
        h.handle("{\"op\":\"fetch\",\"job\":" + std::to_string(id) + "}")));
  };

  const co::GoldenReport cold = run_once();
  EXPECT_GT(cold.exec.full_runs + cold.exec.checkpointed +
                cold.exec.trajectory_checkpointed,
            0u)
      << "cold run must actually simulate";

  // "Restart": the memory tier dies with the process, the directory lives.
  ex::RunCache::global().clear();
  const co::GoldenReport warm = run_once();
  EXPECT_EQ(warm.exec.full_runs, 0u);
  EXPECT_EQ(warm.exec.checkpointed, 0u);
  EXPECT_EQ(warm.exec.cache_disk_hits, warm.exec.jobs)
      << "every job served from the persistent tier";
  ASSERT_EQ(warm.report.impacts.size(), cold.report.impacts.size());
  for (std::size_t k = 0; k < cold.report.impacts.size(); ++k)
    EXPECT_EQ(warm.report.impacts[k].tvd, cold.report.impacts[k].tvd);

  ex::RunCache::global().clear_disk();
  ex::RunCache::global().set_disk_tier("");  // detach: keep later tests hermetic
  ex::RunCache::global().clear();
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// SocketServer: the real AF_UNIX path
// ---------------------------------------------------------------------------

namespace {

std::string scratch_socket() {
  return (fs::temp_directory_path() /
          ("charterd_test_" + std::to_string(::getpid()) + ".sock"))
      .string();
}

}  // namespace

TEST(ServiceSocket, RequestsFlowAndHangupCancelsAttachedJobs) {
  const std::string path = scratch_socket();
  cs::SchedulerOptions options;
  options.start_paused = true;  // keep the submitted job queued past hangup
  Harness h(options);
  cs::SocketServer server(h.service, h.scheduler, path);
  server.start();

  std::uint64_t id = 0;
  {
    cs::Client client(path);
    EXPECT_TRUE(ok(client.call("{\"op\":\"ping\"}")));
    const cs::JsonValue r = client.call(kSmallSubmit);
    ASSERT_TRUE(ok(r));
    id = job_id(r);
  }  // client hangs up with its job still queued

  // Hangups are handled by the connection thread; wait for it to finish
  // (the connection leaves the count only after its cancellations land)
  // before releasing the scheduler, or the tiny job could win the race
  // and complete.
  for (int i = 0; i < 500 && server.open_connections() > 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_EQ(server.open_connections(), 0u);

  h.scheduler.set_paused(false);
  EXPECT_EQ(h.scheduler.await(id).phase, cs::JobPhase::kCancelled)
      << "hangup must cancel the attached job";

  // The server keeps serving new connections afterwards.
  cs::Client again(path);
  EXPECT_TRUE(ok(again.call("{\"op\":\"ping\"}")));
  const cs::JsonValue status = again.call(
      "{\"op\":\"status\",\"job\":" + std::to_string(id) + "}");
  EXPECT_EQ(status_of(status), "cancelled");

  server.request_stop();
  server.wait_until_stopped();
  EXPECT_FALSE(fs::exists(path)) << "socket file removed on stop";
}

TEST(ServiceSocket, OversizedLineGetsAnErrorAndTheConnectionSurvives) {
  const std::string path = scratch_socket() + ".big";
  cs::ServiceLimits limits;
  limits.max_line_bytes = 1024;
  Harness h({}, limits);
  cs::SocketServer server(h.service, h.scheduler, path);
  server.start();
  {
    cs::Client client(path);
    const std::string huge =
        "{\"op\":\"submit\",\"qasm\":\"" + std::string(4096, 'x') + "\"}";
    const cs::JsonValue r = client.call(huge);
    EXPECT_EQ(error_code(r), "too_large");
    // Same connection, next line parses normally.
    EXPECT_TRUE(ok(client.call("{\"op\":\"ping\"}")));
  }
  server.request_stop();
  server.wait_until_stopped();
}

// ---------------------------------------------------------------------------
// Characterize op
// ---------------------------------------------------------------------------

namespace {

/// The characterization payload is the last field of a successful fetch
/// response, mirroring extract_report_json's framing contract.
std::string extract_characterization_json(const std::string& response) {
  const std::string marker = "\"characterization\":";
  const std::size_t at = response.find(marker);
  EXPECT_NE(at, std::string::npos) << response;
  EXPECT_EQ(response.back(), '}') << response;
  const std::size_t begin = at + marker.size();
  return response.substr(begin, response.size() - begin - 1);
}

}  // namespace

TEST(ServiceProtocol, TopKBelongsToCharacterizeOnly) {
  Harness h;
  // top_k on a plain submit is an unknown field, named in the error.
  const cs::JsonValue on_submit = parsed(h.handle(
      "{\"op\":\"submit\",\"benchmark\":\"qft3\",\"top_k\":2}"));
  EXPECT_FALSE(ok(on_submit));
  EXPECT_EQ(error_code(on_submit), "unknown_field");
  // And a characterize submission validates its range.
  const cs::JsonValue zero = parsed(h.handle(
      "{\"op\":\"characterize\",\"benchmark\":\"qft3\",\"top_k\":0}"));
  EXPECT_FALSE(ok(zero));
  EXPECT_EQ(error_code(zero), "bad_request");
}

TEST(ServiceEndToEnd, CharacterizationIsBitIdenticalToDirectSession) {
  ex::RunCache::global().clear();
  Harness h;
  const cs::JsonValue submitted = parsed(h.handle(
      "{\"op\":\"characterize\",\"benchmark\":\"qft3\",\"shots\":0,"
      "\"seed\":77,\"reversals\":2,\"top_k\":2}"));
  ASSERT_TRUE(ok(submitted));
  const std::uint64_t id = job_id(submitted);
  ASSERT_EQ(status_of(parsed(h.handle(
                "{\"op\":\"wait\",\"job\":" + std::to_string(id) + "}"))),
            "done");
  EXPECT_TRUE(h.scheduler.snapshot(id).characterize);
  const charter::characterize::CharacterizationReport daemon_report =
      charter::characterize::characterization_from_json(
          extract_characterization_json(h.handle(
              "{\"op\":\"fetch\",\"job\":" + std::to_string(id) + "}")));

  // The same characterization through the public facade.
  ex::RunCache::global().clear();
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  charter::Session session(
      backend, charter::SessionConfig().shots(0).seed(77).reversals(2));
  const cb::CompiledProgram program =
      session.compile(charter::algos::find_benchmark("qft3").build());
  const co::CharterReport charter_report = session.analyze(program);
  const charter::characterize::CharacterizationReport direct =
      session.characterize(program, charter_report, 2);
  ex::RunCache::global().clear();

  EXPECT_EQ(daemon_report.depths, direct.depths);
  EXPECT_EQ(daemon_report.severity_reversals, direct.severity_reversals);
  EXPECT_EQ(daemon_report.total_sequences, direct.total_sequences);
  EXPECT_EQ(daemon_report.rank_agreement, direct.rank_agreement);
  ASSERT_EQ(daemon_report.gates.size(), direct.gates.size());
  for (std::size_t g = 0; g < direct.gates.size(); ++g) {
    const auto& a = daemon_report.gates[g];
    const auto& b = direct.gates[g];
    EXPECT_EQ(a.op_index, b.op_index) << "gate " << g;
    EXPECT_EQ(a.charter_tvd, b.charter_tvd) << "gate " << g;
    ASSERT_EQ(a.decay.size(), b.decay.size()) << "gate " << g;
    for (std::size_t i = 0; i < b.decay.size(); ++i)
      EXPECT_EQ(a.decay[i].tvd, b.decay[i].tvd)
          << "gate " << g << " depth " << b.decay[i].depth;
    EXPECT_EQ(a.fit.rho, b.fit.rho) << "gate " << g;
    EXPECT_EQ(a.fit.phi, b.fit.phi) << "gate " << g;
    EXPECT_EQ(a.severity, b.severity) << "gate " << g;
    EXPECT_EQ(a.ci.depol.lower, b.ci.depol.lower) << "gate " << g;
    EXPECT_EQ(a.ci.depol.upper, b.ci.depol.upper) << "gate " << g;
    EXPECT_EQ(a.spam_p01, b.spam_p01) << "gate " << g;
    EXPECT_EQ(a.spam_p10, b.spam_p10) << "gate " << g;
  }
  ASSERT_EQ(daemon_report.original_distribution.size(),
            direct.original_distribution.size());
  for (std::size_t i = 0; i < direct.original_distribution.size(); ++i)
    EXPECT_EQ(daemon_report.original_distribution[i],
              direct.original_distribution[i]);
}

TEST(ServiceEndToEnd, FetchOfPlainAnalysisJobStillServesReports) {
  Harness h;
  const cs::JsonValue submitted = parsed(h.handle(kSmallSubmit));
  ASSERT_TRUE(ok(submitted));
  const std::uint64_t id = job_id(submitted);
  h.handle("{\"op\":\"wait\",\"job\":" + std::to_string(id) + "}");
  const std::string fetched =
      h.handle("{\"op\":\"fetch\",\"job\":" + std::to_string(id) + "}");
  EXPECT_NE(fetched.find("\"report\":"), std::string::npos);
  EXPECT_EQ(fetched.find("\"characterization\":"), std::string::npos);
}
