// Tests for src/characterize/: germ-ladder construction and the checkpoint
// prefix claims it makes, splice bit-exactness against standalone runs, the
// acceptance contract that an injected error channel (over-rotation +
// depolarizing + readout confusion) is recovered within the bootstrap CI,
// CharacterizationReport JSON round-trip / corruption rejection, the
// threads x workers determinism matrix, the Session facade path, and a
// golden fixture for the full report (regenerate with
// CHARTER_REGEN_FIXTURES=1, same protocol as test_regression.cpp).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <charter/charter.hpp>

#include "characterize/characterize.hpp"
#include "characterize/report_io.hpp"
#include "core/analyzer.hpp"
#include "exec/batch.hpp"
#include "exec/cache.hpp"
#include "noise/noise_model.hpp"
#include "transpile/topology.hpp"
#include "util/error.hpp"

#ifndef CHARTER_FIXTURE_DIR
#define CHARTER_FIXTURE_DIR "tests/fixtures"
#endif

namespace ca = charter::algos;
namespace cb = charter::backend;
namespace cc = charter::circ;
namespace cn = charter::noise;
namespace co = charter::core;
namespace ct = charter::transpile;
namespace ex = charter::exec;
namespace ch = charter::characterize;

namespace {

cb::CompiledProgram qft3_program(const cb::FakeBackend& backend) {
  return backend.compile(ca::find_benchmark("qft3").build());
}

/// Engine-exact analysis (shots = 0) so sequence outputs carry no sampling
/// noise and every comparison below is about the estimator, not statistics.
co::CharterOptions analysis_options() {
  co::CharterOptions options;
  options.reversals = 2;
  options.run.shots = 0;
  options.run.seed = 2022;
  return options;
}

/// Small but structurally complete characterization configuration: three
/// ladder depths exercise prefix sharing, a handful of bootstrap replicates
/// exercise the CI path.
ch::CharacterizeOptions quick_options() {
  ch::CharacterizeOptions options;
  options.top_k = 2;
  options.depths = {1, 2, 4, 8};
  options.bootstrap_resamples = 8;
  options.severity_reversals = 2;
  options.run.shots = 0;
  options.run.seed = 2022;
  return options;
}

co::CharterReport analyze(const cb::FakeBackend& backend,
                          const cb::CompiledProgram& program) {
  return co::CharterAnalyzer(backend, analysis_options()).analyze(program);
}

void expect_gate_identical(const ch::GateCharacterization& a,
                           const ch::GateCharacterization& b,
                           const std::string& label) {
  EXPECT_EQ(a.op_index, b.op_index) << label;
  EXPECT_EQ(a.kind, b.kind) << label;
  EXPECT_EQ(a.qubits, b.qubits) << label;
  EXPECT_EQ(a.num_qubits, b.num_qubits) << label;
  EXPECT_EQ(a.charter_tvd, b.charter_tvd) << label;
  ASSERT_EQ(a.decay.size(), b.decay.size()) << label;
  for (std::size_t i = 0; i < a.decay.size(); ++i) {
    EXPECT_EQ(a.decay[i].depth, b.decay[i].depth) << label << " point " << i;
    EXPECT_EQ(a.decay[i].tvd, b.decay[i].tvd) << label << " point " << i;
  }
  EXPECT_EQ(a.fit.rho, b.fit.rho) << label;
  EXPECT_EQ(a.fit.phi, b.fit.phi) << label;
  EXPECT_EQ(a.fit.saturation, b.fit.saturation) << label;
  EXPECT_EQ(a.fit.coherent_amplitude, b.fit.coherent_amplitude) << label;
  EXPECT_EQ(a.fit.residual_rms, b.fit.residual_rms) << label;
  EXPECT_EQ(a.severity, b.severity) << label;
  EXPECT_EQ(a.ci.depol.lower, b.ci.depol.lower) << label;
  EXPECT_EQ(a.ci.depol.upper, b.ci.depol.upper) << label;
  EXPECT_EQ(a.ci.rotation.lower, b.ci.rotation.lower) << label;
  EXPECT_EQ(a.ci.rotation.upper, b.ci.rotation.upper) << label;
  EXPECT_EQ(a.ci.severity.lower, b.ci.severity.lower) << label;
  EXPECT_EQ(a.ci.severity.upper, b.ci.severity.upper) << label;
  EXPECT_EQ(a.spam_p01, b.spam_p01) << label;
  EXPECT_EQ(a.spam_p10, b.spam_p10) << label;
}

/// Bit-identity over the numeric payload (everything the JSON schema pins
/// except the exec diagnostics, which worker sharding may legitimately
/// redistribute between counters).
void expect_reports_identical(const ch::CharacterizationReport& a,
                              const ch::CharacterizationReport& b,
                              const std::string& label) {
  EXPECT_EQ(a.depths, b.depths) << label;
  EXPECT_EQ(a.severity_reversals, b.severity_reversals) << label;
  EXPECT_EQ(a.total_sequences, b.total_sequences) << label;
  EXPECT_EQ(a.rank_agreement, b.rank_agreement) << label;
  ASSERT_EQ(a.original_distribution.size(), b.original_distribution.size())
      << label;
  for (std::size_t i = 0; i < a.original_distribution.size(); ++i)
    EXPECT_EQ(a.original_distribution[i], b.original_distribution[i])
        << label << " outcome " << i;
  ASSERT_EQ(a.gates.size(), b.gates.size()) << label;
  for (std::size_t g = 0; g < a.gates.size(); ++g)
    expect_gate_identical(a.gates[g], b.gates[g],
                          label + " gate " + std::to_string(g));
}

std::size_t first_cx_index(const cb::CompiledProgram& program) {
  for (std::size_t i = 0; i < program.physical.size(); ++i)
    if (program.physical.op(i).kind == cc::GateKind::CX) return i;
  ADD_FAILURE() << "program has no CX gate";
  return 0;
}

bool gates_identical(const cc::Gate& a, const cc::Gate& b) {
  return a.kind == b.kind && a.num_qubits == b.num_qubits &&
         a.num_params == b.num_params && a.flags == b.flags &&
         a.qubits == b.qubits && a.params == b.params;
}

// ---------------------------------------------------------------------------
// Germ scheduling
// ---------------------------------------------------------------------------

TEST(GermScheduler, SortsAndDeduplicatesDepths) {
  const ch::GermScheduler scheduler({4, 1, 2, 2, 4}, true);
  EXPECT_EQ(scheduler.depths(), (std::vector<int>{1, 2, 4}));
  EXPECT_EQ(scheduler.max_depth(), 4);
}

TEST(GermScheduler, RejectsInvalidDepths) {
  EXPECT_THROW(ch::GermScheduler({}, true), charter::Error);
  EXPECT_THROW(ch::GermScheduler({2, 0}, true), charter::Error);
  EXPECT_THROW(ch::GermScheduler({-1}, false), charter::Error);
}

TEST(GermScheduler, SharedPrefixCountsPrefixBarrierAndPairs) {
  const ch::GermScheduler isolated({1, 2}, true);
  // Original prefix through the gate (op_index + 1), the opening isolation
  // barrier, and 2L ops per pair.
  EXPECT_EQ(isolated.shared_prefix_ops(5, 3), 5u + 1 + 1 + 6);
  const ch::GermScheduler bare({1, 2}, false);
  EXPECT_EQ(bare.shared_prefix_ops(5, 3), 5u + 1 + 6);
}

TEST(GermScheduler, LadderClaimedPrefixesAreByteIdenticalToBase) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);
  const std::size_t op_index = first_cx_index(program);

  const ch::GermScheduler scheduler({1, 2, 4, 8}, true);
  const ch::GermLadder ladder = scheduler.ladder(program, op_index);

  ASSERT_EQ(ladder.sequences.size(), 4u);
  EXPECT_EQ(ladder.op_index, op_index);
  const ch::GermSequence& base = ladder.sequences.back();
  EXPECT_EQ(base.depth, 8);
  // The base claims its full size — the same convention the analyzer uses
  // for the batch's base program.
  EXPECT_EQ(base.shared_prefix, base.program.physical.size());

  for (const ch::GermSequence& seq : ladder.sequences) {
    // Each depth-L sequence adds the isolation barriers plus L pairs.
    EXPECT_EQ(seq.program.physical.size(),
              program.physical.size() + 2 + 2 * std::size_t(seq.depth));
    EXPECT_EQ(seq.program.num_logical, program.num_logical);
    if (&seq == &base) continue;
    EXPECT_EQ(seq.shared_prefix,
              scheduler.shared_prefix_ops(op_index, seq.depth));
    ASSERT_LE(seq.shared_prefix, base.program.physical.size());
    for (std::size_t i = 0; i < seq.shared_prefix; ++i)
      EXPECT_TRUE(gates_identical(seq.program.physical.op(i),
                                  base.program.physical.op(i)))
          << "depth " << seq.depth << " op " << i;
  }
}

// ---------------------------------------------------------------------------
// Splice bit-exactness
// ---------------------------------------------------------------------------

TEST(GermExecution, SplicedLadderMatchesStandaloneRuns) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);
  const ch::GermScheduler scheduler({1, 2, 4, 8}, true);
  const ch::GermLadder ladder =
      scheduler.ladder(program, first_cx_index(program));

  cb::RunOptions run;
  run.shots = 0;
  run.seed = 2022;

  std::vector<ex::AnalysisJob> jobs;
  for (const ch::GermSequence& seq : ladder.sequences)
    jobs.push_back({&seq.program, run, seq.shared_prefix});

  ex::RunCache::global().clear();
  ex::BatchOptions options;
  options.caching = false;
  ex::BatchRunner runner(backend, options);
  const std::vector<std::vector<double>> spliced =
      runner.run(jobs, &ladder.sequences.back().program);
  // The shallower depths must actually have resumed from the base sweep's
  // prefix snapshots, not fallen back to full runs.
  EXPECT_GT(runner.last_stats().checkpointed, 0u);
  EXPECT_EQ(runner.last_stats().checkpoint_fallbacks, 0u);

  ASSERT_EQ(spliced.size(), ladder.sequences.size());
  for (std::size_t i = 0; i < ladder.sequences.size(); ++i) {
    const std::vector<double> standalone =
        backend.run(ladder.sequences[i].program, run);
    ASSERT_EQ(spliced[i].size(), standalone.size());
    for (std::size_t k = 0; k < standalone.size(); ++k)
      EXPECT_EQ(spliced[i][k], standalone[k])
          << "depth " << ladder.sequences[i].depth << " outcome " << k;
  }
}

// ---------------------------------------------------------------------------
// Ground-truth channel recovery (the subsystem's acceptance criterion)
// ---------------------------------------------------------------------------

/// Backend with a fully known error channel: every mechanism off except
/// per-gate depolarizing + coherent over-rotation and readout confusion.
/// Physical qubit 0's X carries the large injected channel, qubit 1's X a
/// smaller depolarizing-only one, so both the estimates and the severity
/// ordering are checkable (and the expectations hold under either layout
/// the transpiler picks, because they key on physical qubits).
cb::FakeBackend ground_truth_backend(double q0_depol, double q0_overrot,
                                     double q1_depol) {
  const ct::Topology topo = ct::line(2);
  cn::NoiseModel model = cn::generate_calibration(2, topo.edges(), 11);
  cn::NoiseToggles& toggles = model.toggles();
  toggles.decoherence = false;
  toggles.static_zz = false;
  toggles.drive_zz = false;
  toggles.prep = false;
  for (int q = 0; q < 2; ++q) {
    for (cc::GateKind kind :
         {cc::GateKind::SX, cc::GateKind::SXDG, cc::GateKind::X}) {
      model.gate_1q(kind, q).depol = 0.0;
      model.gate_1q(kind, q).overrot_frac = 0.0;
    }
  }
  model.gate_1q(cc::GateKind::X, 0).depol = q0_depol;
  model.gate_1q(cc::GateKind::X, 0).overrot_frac = q0_overrot;
  model.gate_1q(cc::GateKind::X, 1).depol = q1_depol;
  model.edge(0, 1).cx_depol = 0.0;
  model.edge(0, 1).cx_zz_angle = 0.0;
  cb::FakeBackend backend(topo, model);
  backend.set_readout_confusion(0.01, 0.02);
  return backend;
}

/// The calibration's depolarizing knob is a uniform-Pauli error
/// probability; the estimator reports the Bloch contraction it implies
/// (see ChannelFit::depol_per_application).
double contraction_from_pauli(double q) { return 4.0 * q / 3.0; }

TEST(ChannelRecovery, InjectedChannelIsRecoveredWithinBootstrapCi) {
  const double q0_depol = 0.004;
  const double q0_overrot = 0.02;
  const double q1_depol = 0.001;
  const cb::FakeBackend backend =
      ground_truth_backend(q0_depol, q0_overrot, q1_depol);

  // One X per qubit, each the last gate on its wire: the germ block then
  // acts on a pole state and is measured directly, which is the regime
  // where the header's decay model is exact (a trailing rotation on the
  // same wire would shift the oscillation's phase offset away from phi/2).
  cc::Circuit logical(2);
  logical.x(0);
  logical.x(1);
  const cb::CompiledProgram program = backend.compile(logical);

  co::CharterOptions analysis;
  analysis.reversals = 5;
  analysis.run.shots = 0;
  analysis.run.seed = 7;
  const co::CharterReport charter =
      co::CharterAnalyzer(backend, analysis).analyze(program);
  ASSERT_EQ(charter.impacts.size(), 2u);

  ch::CharacterizeOptions options;
  options.top_k = 2;
  options.severity_reversals = 5;
  options.bootstrap_resamples = 200;
  options.run.shots = 0;
  options.run.seed = 7;
  ex::RunCache::global().clear();
  const ch::CharacterizationReport report =
      ch::GateCharacterizer(backend, options).characterize(program, charter);
  ex::RunCache::global().clear();

  ASSERT_EQ(report.gates.size(), 2u);
  // Charter must rank physical qubit 0's heavily miscalibrated X first...
  EXPECT_EQ(report.gates[0].kind, cc::GateKind::X);
  EXPECT_EQ(report.gates[1].kind, cc::GateKind::X);
  EXPECT_EQ(report.gates[0].qubits[0], 0);
  EXPECT_EQ(report.gates[1].qubits[0], 1);
  EXPECT_GT(report.gates[0].charter_tvd, report.gates[1].charter_tvd);
  // ...and the fitted severities must agree with that ordering (the
  // GST-vs-reversibility cross-validation).
  EXPECT_EQ(report.severity_ranking(),
            (std::vector<std::size_t>{0, 1}));
  EXPECT_GT(report.gates[0].severity, report.gates[1].severity);

  // Qubit 0's X: depolarizing and rotation recovered at the injected
  // truth, and inside the (slightly widened) bootstrap interval.  Shots
  // are 0, so the interval is narrow — the widening absorbs the fit's
  // grid resolution only.
  const ch::GateCharacterization& noisy = report.gates[0];
  const double depol_truth = contraction_from_pauli(q0_depol);
  const double phi_truth = M_PI * q0_overrot;
  EXPECT_NEAR(noisy.fit.depol_per_application(), depol_truth, 5e-4);
  EXPECT_NEAR(noisy.fit.phi, phi_truth, 2e-3);
  EXPECT_GE(depol_truth, noisy.ci.depol.lower - 1e-3);
  EXPECT_LE(depol_truth, noisy.ci.depol.upper + 1e-3);
  EXPECT_GE(phi_truth, noisy.ci.rotation.lower - 1e-3);
  EXPECT_LE(phi_truth, noisy.ci.rotation.upper + 1e-3);
  EXPECT_LT(noisy.fit.residual_rms, 1e-3);

  // Qubit 1's X: pure depolarizing, no coherent part.
  const ch::GateCharacterization& mild = report.gates[1];
  const double mild_truth = contraction_from_pauli(q1_depol);
  EXPECT_NEAR(mild.fit.depol_per_application(), mild_truth, 5e-4);
  EXPECT_GE(mild_truth, mild.ci.depol.lower - 1e-3);
  EXPECT_LE(mild_truth, mild.ci.depol.upper + 1e-3);
  EXPECT_LT(mild.fit.coherent_amplitude * mild.fit.phi, 1e-3);

  // SPAM: preparation error is off, so the empty-fiducial marginal is the
  // injected p(1|0) exactly; the all-X fiducial adds one noisy X on top of
  // the injected p(0|1).
  EXPECT_NEAR(noisy.spam_p01, 0.01, 1e-9);
  EXPECT_NEAR(noisy.spam_p10, 0.02, 0.01);
}

// ---------------------------------------------------------------------------
// Report JSON round-trip and corruption rejection
// ---------------------------------------------------------------------------

ch::CharacterizationReport quick_report(const cb::FakeBackend& backend) {
  const cb::CompiledProgram program = qft3_program(backend);
  const co::CharterReport charter = analyze(backend, program);
  return ch::GateCharacterizer(backend, quick_options())
      .characterize(program, charter);
}

TEST(CharacterizationIo, RoundTripsBitIdentically) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  ex::RunCache::global().clear();
  const ch::CharacterizationReport report = quick_report(backend);
  ex::RunCache::global().clear();

  const std::string json = ch::characterization_to_json(report);
  const ch::CharacterizationReport parsed =
      ch::characterization_from_json(json);
  expect_reports_identical(report, parsed, "round-trip");
  // Exec diagnostics survive the round-trip too.
  EXPECT_EQ(report.exec_stats.jobs, parsed.exec_stats.jobs);
  EXPECT_EQ(report.exec_stats.checkpointed, parsed.exec_stats.checkpointed);
  EXPECT_EQ(report.exec_stats.full_runs, parsed.exec_stats.full_runs);
  // And a second serialization is byte-stable.
  EXPECT_EQ(json, ch::characterization_to_json(parsed));
}

TEST(CharacterizationIo, RejectsCorruptedDocuments) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  ex::RunCache::global().clear();
  const std::string json =
      ch::characterization_to_json(quick_report(backend));
  ex::RunCache::global().clear();

  const auto expect_rejected = [](std::string doc, const std::string& what) {
    EXPECT_THROW(ch::characterization_from_json(doc), charter::Error)
        << what;
  };

  expect_rejected(json.substr(0, json.size() / 2), "truncated document");
  expect_rejected(json + "trailing", "trailing garbage");
  expect_rejected("", "empty document");
  expect_rejected("[]", "wrong top-level type");

  std::string renamed = json;
  renamed.replace(renamed.find("\"rho\""), 5, "\"rhO\"");
  expect_rejected(renamed, "renamed required key");

  std::string bad_schema = json;
  bad_schema.replace(bad_schema.find("\"schema\":"), 10, "\"schema\":9");
  expect_rejected(bad_schema, "unknown schema version");

  std::string bad_number = json;
  const std::size_t tvd = bad_number.find("\"charter_tvd\":");
  bad_number.replace(tvd, 15, "\"charter_tvd\":x");
  expect_rejected(bad_number, "malformed number");

  // depol_per_application is redundant with rho; the parser cross-checks
  // them so a hand-edited document cannot carry a silent inconsistency.
  std::string inconsistent = json;
  const std::size_t depol = inconsistent.find("\"depol_per_application\":");
  inconsistent.replace(depol, 25, "\"depol_per_application\":0.43,\"");
  expect_rejected(inconsistent, "depol inconsistent with rho");
}

// ---------------------------------------------------------------------------
// Determinism matrix: threads x workers
// ---------------------------------------------------------------------------

TEST(CharacterizationDeterminism, ThreadsAndWorkersMatrix) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);
  const co::CharterReport charter = analyze(backend, program);

  const auto characterize = [&](int threads, int workers) {
    ch::CharacterizeOptions options = quick_options();
    options.exec.threads = threads;
    options.exec.workers = workers;  // empty worker_exe: plain-fork workers
    ex::RunCache::global().clear();
    const ch::CharacterizationReport report =
        ch::GateCharacterizer(backend, options).characterize(program,
                                                             charter);
    ex::RunCache::global().clear();
    return report;
  };

  const ch::CharacterizationReport baseline = characterize(1, 0);
  ASSERT_EQ(baseline.gates.size(), 2u);
  EXPECT_EQ(baseline.total_sequences, 2u * 4u);
  for (const int threads : {1, 2, 8}) {
    for (const int workers : {0, 2}) {
      if (threads == 1 && workers == 0) continue;
      const std::string label = "threads=" + std::to_string(threads) +
                                " workers=" + std::to_string(workers);
      expect_reports_identical(baseline, characterize(threads, workers),
                               label);
    }
  }
}

TEST(CharacterizationDeterminism, WarmRunCacheIsBitIdentical) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);
  const co::CharterReport charter = analyze(backend, program);
  const ch::GateCharacterizer characterizer(backend, quick_options());

  ex::RunCache::global().clear();
  const ch::CharacterizationReport cold =
      characterizer.characterize(program, charter);
  const ch::CharacterizationReport warm =
      characterizer.characterize(program, charter);
  ex::RunCache::global().clear();

  expect_reports_identical(cold, warm, "warm cache");
  EXPECT_GT(warm.exec_stats.cache_hits, 0u);
}

// ---------------------------------------------------------------------------
// Session facade
// ---------------------------------------------------------------------------

TEST(SessionCharacterization, MatchesDirectCharacterizerBitIdentically) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = qft3_program(backend);

  charter::SessionConfig config =
      charter::SessionConfig().reversals(2).shots(0).seed(2022);
  config.execution().strategy(ex::StrategyKind::kDmExact);

  ex::RunCache::global().clear();
  charter::Session session(backend, config);
  const co::CharterReport charter = session.analyze(program);
  const ch::CharacterizationReport via_session =
      session.characterize(program, charter, 2);

  ch::CharacterizeOptions direct;
  direct.top_k = 2;
  direct.severity_reversals = 2;
  direct.run.shots = 0;
  direct.run.seed = 2022;
  direct.strategy = ex::StrategyKind::kDmExact;
  ex::RunCache::global().clear();
  const ch::CharacterizationReport via_direct =
      ch::GateCharacterizer(backend, direct).characterize(program, charter);
  ex::RunCache::global().clear();

  expect_reports_identical(via_session, via_direct, "session vs direct");
}

TEST(SessionCharacterization, RejectsInvalidTopK) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  charter::Session session(backend,
                           charter::SessionConfig().shots(0).seed(2022));
  const cb::CompiledProgram program = qft3_program(backend);
  const co::CharterReport charter = session.analyze(program);
  EXPECT_THROW(session.characterize(program, charter, 0), charter::Error);
}

// ---------------------------------------------------------------------------
// Golden fixture
// ---------------------------------------------------------------------------

std::string fixture_path(const std::string& name) {
  return std::string(CHARTER_FIXTURE_DIR) + "/" + name + ".json";
}

TEST(CharacterizationGolden, Qft3) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  ex::RunCache::global().clear();
  const ch::CharacterizationReport report =
      quick_report(backend);
  ex::RunCache::global().clear();
  const std::string json = ch::characterization_to_json(report);

  const std::string path = fixture_path("characterize_qft3");
  if (std::getenv("CHARTER_REGEN_FIXTURES") != nullptr) {
    std::ofstream out(path, std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << json << "\n";
    GTEST_SKIP() << "fixture regenerated: " << path;
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good())
      << "missing fixture " << path
      << " (regenerate with CHARTER_REGEN_FIXTURES=1)";
  std::stringstream buffer;
  buffer << in.rdbuf();
  const ch::CharacterizationReport golden =
      ch::characterization_from_json(buffer.str());

  // Shots are 0 and the estimator is a pure function of the decay points,
  // so doubles replay within the cross-toolchain libm budget; on identical
  // toolchains they are typically bit-equal.
  constexpr double kTol = 1e-12;
  EXPECT_EQ(report.depths, golden.depths);
  EXPECT_EQ(report.severity_reversals, golden.severity_reversals);
  EXPECT_EQ(report.total_sequences, golden.total_sequences);
  EXPECT_NEAR(report.rank_agreement, golden.rank_agreement, kTol);
  ASSERT_EQ(report.original_distribution.size(),
            golden.original_distribution.size());
  for (std::size_t i = 0; i < golden.original_distribution.size(); ++i)
    EXPECT_NEAR(report.original_distribution[i],
                golden.original_distribution[i], kTol)
        << "outcome " << i;
  ASSERT_EQ(report.gates.size(), golden.gates.size());
  for (std::size_t g = 0; g < golden.gates.size(); ++g) {
    const ch::GateCharacterization& got = report.gates[g];
    const ch::GateCharacterization& want = golden.gates[g];
    const std::string label = "gate " + std::to_string(g);
    EXPECT_EQ(got.op_index, want.op_index) << label;
    EXPECT_EQ(got.kind, want.kind) << label;
    EXPECT_EQ(got.qubits, want.qubits) << label;
    EXPECT_NEAR(got.charter_tvd, want.charter_tvd, kTol) << label;
    ASSERT_EQ(got.decay.size(), want.decay.size()) << label;
    for (std::size_t i = 0; i < want.decay.size(); ++i)
      EXPECT_NEAR(got.decay[i].tvd, want.decay[i].tvd, kTol)
          << label << " depth " << want.decay[i].depth;
    EXPECT_NEAR(got.fit.rho, want.fit.rho, kTol) << label;
    EXPECT_NEAR(got.fit.phi, want.fit.phi, kTol) << label;
    EXPECT_NEAR(got.severity, want.severity, kTol) << label;
    EXPECT_NEAR(got.ci.depol.lower, want.ci.depol.lower, kTol) << label;
    EXPECT_NEAR(got.ci.depol.upper, want.ci.depol.upper, kTol) << label;
    EXPECT_NEAR(got.spam_p01, want.spam_p01, kTol) << label;
    EXPECT_NEAR(got.spam_p10, want.spam_p10, kTol) << label;
  }
  // The execution shape (jobs, checkpoint reuse, fallbacks) is part of the
  // pinned contract; timing fields are not.
  EXPECT_EQ(report.exec_stats.jobs, golden.exec_stats.jobs);
  EXPECT_EQ(report.exec_stats.checkpointed, golden.exec_stats.checkpointed);
  EXPECT_EQ(report.exec_stats.full_runs, golden.exec_stats.full_runs);
  EXPECT_EQ(report.exec_stats.checkpoint_fallbacks,
            golden.exec_stats.checkpoint_fallbacks);
}

}  // namespace
