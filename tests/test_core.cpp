// Tests for the charter core: reversed-pair construction invariants, the
// analyzer's ability to localize injected noise, amplification with the
// reversal count, RZ skipping, input-impact discovery, report analytics, and
// the serialization mitigation.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "algos/algorithms.hpp"
#include "backend/backend.hpp"
#include "core/analyzer.hpp"
#include "core/mitigation.hpp"
#include "core/baseline.hpp"
#include "core/reversal.hpp"
#include "sim/statevector.hpp"
#include "stats/stats.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace ca = charter::algos;
namespace cb = charter::backend;
namespace cc = charter::circ;
namespace cn = charter::noise;
namespace co = charter::core;
namespace ct = charter::transpile;
using cc::GateKind;

namespace {

/// A small line-topology backend with mild uniform noise; tests then poison
/// specific elements to verify charter localizes them.
cb::FakeBackend uniform_backend(int n, double depol_1q = 1e-4,
                                double depol_cx = 1e-3) {
  const ct::Topology topo = ct::line(n);
  cn::NoiseModel model(n);
  for (int q = 0; q < n; ++q) {
    model.qubit(q).t1_ns = 1e9;  // effectively no decoherence
    model.qubit(q).t2_ns = 2e9;
    model.qubit(q).prep_error = 0.0;
    model.qubit(q).readout = {};
    for (GateKind k : {GateKind::SX, GateKind::X}) {
      model.gate_1q(k, q).depol = depol_1q;
      model.gate_1q(k, q).overrot_frac = 0.0;
    }
  }
  for (const auto& [a, b] : topo.edges()) {
    cn::EdgeCal e;
    e.cx_depol = depol_cx;
    e.cx_zz_angle = 0.0;
    e.static_zz_rate = 0.0;
    e.drive_zz_rate = 0.0;
    model.add_edge(a, b, e);
  }
  return cb::FakeBackend(topo, model);
}

/// Compiles without noise-aware layout so poisoned qubits stay in use.
cb::CompiledProgram compile_trivial(const cb::FakeBackend& backend,
                                    const cc::Circuit& logical) {
  ct::TranspileOptions opts;
  opts.noise_aware = false;
  return backend.compile(logical, opts);
}

co::CharterOptions exact_options(int reversals = 5) {
  co::CharterOptions opts;
  opts.reversals = reversals;
  opts.run.shots = 0;  // exact distributions: no sampling noise in tests
  return opts;
}

}  // namespace

// ---- reversed-pair construction ----

TEST(Reversal, EligibleOpsSkipRzAndBarriers) {
  cc::Circuit c(2);
  c.rz(0, 0.5).sx(0).barrier().x(1).cx(0, 1).rz(1, 0.1);
  EXPECT_EQ(co::reversible_ops(c, true).size(), 3u);   // sx, x, cx
  EXPECT_EQ(co::reversible_ops(c, false).size(), 5u);  // + both rz
}

TEST(Reversal, InsertedPairStructure) {
  cc::Circuit c(2);
  c.sx(0).cx(0, 1);
  const cc::Circuit rev = co::insert_reversed_pairs(c, 0, 3);
  // Original 2 ops + 2 barriers + 3 pairs of (sxdg, sx).
  ASSERT_EQ(rev.size(), 2u + 2u + 6u);
  EXPECT_EQ(rev.op(0).kind, GateKind::SX);
  EXPECT_EQ(rev.op(1).kind, GateKind::BARRIER);
  EXPECT_EQ(rev.op(2).kind, GateKind::SXDG);
  EXPECT_EQ(rev.op(3).kind, GateKind::SX);
  EXPECT_TRUE(rev.op(2).has_flag(cc::kFlagReversal));
  EXPECT_EQ(rev.op(8).kind, GateKind::BARRIER);
  EXPECT_EQ(rev.op(9).kind, GateKind::CX);
}

TEST(Reversal, NoBarriersWhenIsolationOff) {
  cc::Circuit c(1);
  c.x(0);
  const cc::Circuit rev = co::insert_reversed_pairs(c, 0, 2, false);
  EXPECT_EQ(rev.size(), 5u);
  EXPECT_EQ(rev.count_kind(GateKind::BARRIER), 0u);
}

TEST(Reversal, PreservesIdealSemantics) {
  // Property: for every gate of a compiled program and several reversal
  // counts, the reversed circuit's ideal output equals the original's.
  const cb::FakeBackend backend = uniform_backend(4);
  const cb::CompiledProgram prog =
      compile_trivial(backend, ca::qft(3, 5));
  const auto want = backend.ideal(prog);
  for (const std::size_t idx : co::reversible_ops(prog.physical, true)) {
    for (const int r : {1, 5}) {
      cb::CompiledProgram rev = prog;
      rev.physical = co::insert_reversed_pairs(prog.physical, idx, r);
      const auto got = backend.ideal(rev);
      ASSERT_LT(charter::stats::tvd(want, got), 1e-9)
          << "op " << idx << " r " << r;
    }
  }
}

TEST(Reversal, BlockReversalPreservesIdealSemantics) {
  const cb::FakeBackend backend = uniform_backend(4);
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 3));
  cb::CompiledProgram rev = prog;
  rev.physical =
      co::insert_block_reversal(prog.physical, 0, prog.physical.size(), 2);
  EXPECT_LT(charter::stats::tvd(backend.ideal(prog), backend.ideal(rev)),
            1e-9);
}

TEST(Reversal, InputBlockCoversPrepGates) {
  const cb::FakeBackend backend = uniform_backend(4);
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 7));
  const cc::Circuit rev =
      co::insert_input_block_reversal(prog.physical, 3);
  EXPECT_GT(rev.size(), prog.physical.size());
  EXPECT_LT(
      charter::stats::tvd(backend.ideal(prog),
                          backend.ideal({rev, prog.final_layout, 3})),
      1e-9);
}

TEST(Reversal, InputBlockRequiresPrepTags) {
  cc::Circuit c(2);
  c.sx(0).cx(0, 1);
  EXPECT_THROW(co::insert_input_block_reversal(c, 3), charter::NotFound);
}

// ---- analyzer ----

TEST(Analyzer, QuietBackendYieldsZeroImpacts) {
  cb::FakeBackend backend = uniform_backend(4, 0.0, 0.0);
  backend.model().toggles().decoherence = false;
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  const co::CharterAnalyzer analyzer(backend, exact_options());
  const co::CharterReport report = analyzer.analyze(prog);
  ASSERT_GT(report.impacts.size(), 0u);
  for (const co::GateImpact& g : report.impacts) EXPECT_LT(g.tvd, 1e-9);
}

TEST(Analyzer, LocalizesAHotEdge) {
  // Poison one CX edge; the top-ranked gates must be CX gates on that edge.
  cb::FakeBackend backend = uniform_backend(4);
  backend.model().edge(1, 2).cx_depol = 0.08;
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  const co::CharterAnalyzer analyzer(backend, exact_options());
  const co::CharterReport report = analyzer.analyze(prog);
  const auto sorted = report.sorted_by_impact();
  ASSERT_GE(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].kind, GateKind::CX);
  const bool on_hot_edge =
      (sorted[0].qubits[0] == 1 && sorted[0].qubits[1] == 2) ||
      (sorted[0].qubits[0] == 2 && sorted[0].qubits[1] == 1);
  EXPECT_TRUE(on_hot_edge);
}

TEST(Analyzer, LocalizesAHotOneQubitGate) {
  // Poison SX on one qubit; paper Observation V: one-qubit gates can beat
  // CX gates in impact.
  cb::FakeBackend backend = uniform_backend(4);
  backend.model().gate_1q(GateKind::SX, 0).depol = 0.06;
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  const co::CharterAnalyzer analyzer(backend, exact_options());
  const co::CharterReport report = analyzer.analyze(prog);
  const auto sorted = report.sorted_by_impact();
  EXPECT_TRUE(sorted[0].kind == GateKind::SX ||
              sorted[0].kind == GateKind::SXDG);
  EXPECT_EQ(sorted[0].qubits[0], 0);
  // And the Table VII statistic sees one-qubit gates above the weakest CX.
  const auto exceed = report.one_qubit_above_min_cx();
  EXPECT_GT(exceed.count, 0u);
}

TEST(Analyzer, AmplificationGrowsWithReversals) {
  cb::FakeBackend backend = uniform_backend(4);
  backend.model().edge(1, 2).cx_depol = 0.03;
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));

  double max_r1 = 0.0, max_r7 = 0.0;
  {
    const co::CharterAnalyzer analyzer(backend, exact_options(1));
    for (const auto& g : analyzer.analyze(prog).impacts)
      max_r1 = std::max(max_r1, g.tvd);
  }
  {
    const co::CharterAnalyzer analyzer(backend, exact_options(7));
    for (const auto& g : analyzer.analyze(prog).impacts)
      max_r7 = std::max(max_r7, g.tvd);
  }
  EXPECT_GT(max_r7, 2.0 * max_r1);
}

TEST(Analyzer, RzGatesHaveNegligibleImpact) {
  cb::FakeBackend backend = uniform_backend(4);
  co::CharterOptions opts = exact_options();
  opts.skip_rz = false;  // paper's QFT(3) demonstration includes RZ runs
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  const co::CharterAnalyzer analyzer(backend, opts);
  const co::CharterReport report = analyzer.analyze(prog);
  double max_rz = 0.0, max_other = 0.0;
  for (const co::GateImpact& g : report.impacts) {
    if (g.kind == GateKind::RZ)
      max_rz = std::max(max_rz, g.tvd);
    else
      max_other = std::max(max_other, g.tvd);
  }
  // RZ pairs are free gates; the only residual is the barrier-induced
  // re-alignment of the schedule, orders of magnitude below real gates.
  EXPECT_LT(max_rz, 1e-5);
  EXPECT_GT(max_other, 50.0 * max_rz);
}

TEST(Analyzer, SkipRzShrinksRunCount) {
  cb::FakeBackend backend = uniform_backend(4);
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  co::CharterOptions with_rz = exact_options();
  with_rz.skip_rz = false;
  co::CharterOptions without_rz = exact_options();
  const co::CharterAnalyzer a(backend, with_rz);
  const co::CharterAnalyzer b(backend, without_rz);
  const auto ra = a.analyze(prog);
  const auto rb = b.analyze(prog);
  EXPECT_GT(ra.analyzed_gates, rb.analyzed_gates);
  // Paper: RZ elimination removes 20-45% of the runs.
  const double saved = 1.0 - static_cast<double>(rb.analyzed_gates) /
                                 static_cast<double>(ra.analyzed_gates);
  EXPECT_GT(saved, 0.15);
  EXPECT_LT(saved, 0.60);
}

TEST(Analyzer, SubsamplingCapsRunsButKeepsCoverage) {
  cb::FakeBackend backend = uniform_backend(4);
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  co::CharterOptions opts = exact_options();
  opts.max_gates = 7;
  const co::CharterAnalyzer analyzer(backend, opts);
  const co::CharterReport report = analyzer.analyze(prog);
  EXPECT_LE(report.analyzed_gates, 7u);
  // Samples span the circuit: first and last eligible gates included.
  const auto eligible = co::reversible_ops(prog.physical, true);
  EXPECT_EQ(report.impacts.front().op_index, eligible.front());
  EXPECT_EQ(report.impacts.back().op_index, eligible.back());
}

TEST(Analyzer, ValidationCorrelatesScoresWithIdeal) {
  // With real noise, TVD(rev, orig) must track TVD(rev, ideal) — the
  // paper's Table III argument that O_orig substitutes for O_ideal.
  cb::FakeBackend backend = uniform_backend(4, 5e-4, 8e-3);
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  co::CharterOptions opts = exact_options();
  opts.compute_validation = true;
  const co::CharterAnalyzer analyzer(backend, opts);
  const co::CharterReport report = analyzer.analyze(prog);
  const auto corr = report.validation_correlation();
  EXPECT_GT(corr.r, 0.9);
  EXPECT_LT(corr.p_value, 0.01);
}

TEST(Analyzer, InputImpactDiffersAcrossInputs) {
  cb::FakeBackend backend = uniform_backend(4, 5e-4, 8e-3);
  const co::CharterAnalyzer analyzer(backend, exact_options());
  std::vector<double> impacts;
  for (const std::uint64_t k : {0ULL, 7ULL}) {
    const cb::CompiledProgram prog =
        compile_trivial(backend, ca::qft(3, k));
    impacts.push_back(analyzer.input_impact(prog));
  }
  EXPECT_GT(impacts[0], 0.0);
  EXPECT_GT(impacts[1], 0.0);
  EXPECT_NE(impacts[0], impacts[1]);
}

// ---- report analytics ----

namespace {
co::CharterReport synthetic_report() {
  co::CharterReport report;
  const auto add = [&](GateKind kind, int q0, int q1, int layer, double tvd) {
    co::GateImpact g;
    g.kind = kind;
    g.qubits = {static_cast<std::int16_t>(q0), static_cast<std::int16_t>(q1),
                -1};
    g.num_qubits = q1 >= 0 ? 2 : 1;
    g.layer = layer;
    g.tvd = tvd;
    report.impacts.push_back(g);
  };
  add(GateKind::SX, 0, -1, 0, 0.50);
  add(GateKind::CX, 0, 1, 1, 0.40);
  add(GateKind::X, 1, -1, 2, 0.30);
  add(GateKind::CX, 1, 2, 3, 0.20);
  add(GateKind::SX, 2, -1, 4, 0.10);
  add(GateKind::X, 0, -1, 5, 0.05);
  return report;
}
}  // namespace

TEST(Report, LayerCorrelationSign) {
  const co::CharterReport report = synthetic_report();
  // Impacts strictly decrease with layer -> strong negative correlation.
  const auto corr = report.layer_correlation();
  EXPECT_LT(corr.r, -0.9);
}

TEST(Report, QubitCoverage) {
  const co::CharterReport report = synthetic_report();
  // Top 17% (1 gate): SX on qubit 0 -> 1/3 of qubits.
  EXPECT_NEAR(report.qubit_coverage(1.0 / 6.0, 3), 1.0 / 3.0, 1e-12);
  // Top 50% (3 gates): qubits {0, 1} -> 2/3.
  EXPECT_NEAR(report.qubit_coverage(0.5, 3), 2.0 / 3.0, 1e-12);
  // All gates -> all qubits.
  EXPECT_NEAR(report.qubit_coverage(1.0, 3), 1.0, 1e-12);
}

TEST(Report, OneQubitAboveMinCx) {
  const co::CharterReport report = synthetic_report();
  // min CX impact = 0.20; one-qubit gates above it: 0.50, 0.30 -> 2 of 4.
  const auto exceed = report.one_qubit_above_min_cx();
  EXPECT_EQ(exceed.count, 2u);
  EXPECT_EQ(exceed.one_qubit_total, 4u);
  EXPECT_NEAR(exceed.fraction, 0.5, 1e-12);
}

TEST(Report, SortedByImpactDescending) {
  const auto sorted = synthetic_report().sorted_by_impact();
  for (std::size_t i = 1; i < sorted.size(); ++i)
    EXPECT_GE(sorted[i - 1].tvd, sorted[i].tvd);
}

// ---- mitigation ----

TEST(Mitigation, SerializeLayersAddsBarriersAndDepth) {
  cc::Circuit c(3);
  c.x(0).x(1).x(2);  // one parallel layer
  const cc::Circuit serial = co::serialize_layers(c, {0});
  EXPECT_GT(serial.count_kind(GateKind::BARRIER), 0u);
  EXPECT_EQ(serial.depth(), 3);  // fully serialized
}

TEST(Mitigation, UntouchedLayersKeepParallelism) {
  cc::Circuit c(3);
  c.x(0).x(1).x(2);  // layer 0
  c.sx(0).sx(1);     // layer 1
  const cc::Circuit serial = co::serialize_layers(c, {1});
  // Layer 0 stays parallel; layer 1 (2 gates) serializes.
  EXPECT_EQ(serial.depth(), 1 + 2);
}

TEST(Mitigation, HighImpactLayersSelected) {
  const co::CharterReport report = synthetic_report();
  const auto layers = co::high_impact_layers(report, 1.0 / 3.0);
  ASSERT_EQ(layers.size(), 2u);  // top 2 gates live in layers 0 and 1
  EXPECT_EQ(layers[0], 0);
  EXPECT_EQ(layers[1], 1);
}

TEST(Mitigation, SelectiveSerializationReducesCrosstalkError) {
  // Craft a device with strong drive crosstalk and a circuit dominated by
  // parallel one-qubit layers; charter must rank those layers on top and
  // serializing them must reduce the output error versus ideal (the paper's
  // Sec. V strategy, 0.19 -> 0.12 on hardware).
  const ct::Topology topo = ct::line(3);
  cn::NoiseModel model(3);
  for (int q = 0; q < 3; ++q) {
    model.qubit(q).t1_ns = 1e8;  // decoherence negligible vs crosstalk
    model.qubit(q).t2_ns = 2e8;
    model.qubit(q).prep_error = 0.0;
    model.qubit(q).readout = {};
    for (GateKind k : {GateKind::SX, GateKind::X}) {
      model.gate_1q(k, q).depol = 1e-5;
      model.gate_1q(k, q).overrot_frac = 0.0;
    }
  }
  for (const auto& [a, b] : topo.edges()) {
    cn::EdgeCal e;
    e.cx_depol = 1e-4;
    e.cx_zz_angle = 0.0;
    e.static_zz_rate = 1e-7;
    e.drive_zz_rate = 1e-2;  // dominant drive crosstalk
    model.add_edge(a, b, e);
  }
  cb::FakeBackend backend(topo, model);

  // |+++>, several parallel X layers (heavy drive overlap), rotate back.
  cc::Circuit logical(3);
  for (int q = 0; q < 3; ++q) logical.h(q);
  for (int layer = 0; layer < 4; ++layer)
    for (int q = 0; q < 3; ++q) logical.x(q);
  for (int q = 0; q < 3; ++q) logical.h(q);

  ct::TranspileOptions topts;
  topts.noise_aware = false;
  topts.optimization_level = 1;  // keep the X layers intact (no 1q fusion)
  const cb::CompiledProgram prog = backend.compile(logical, topts);

  const co::CharterAnalyzer analyzer(backend, exact_options());
  const co::CharterReport report = analyzer.analyze(prog);

  cb::CompiledProgram mitigated = prog;
  mitigated.physical =
      co::serialize_high_impact(prog.physical, report, 0.30);
  EXPECT_GT(mitigated.physical.count_kind(GateKind::BARRIER),
            prog.physical.count_kind(GateKind::BARRIER));

  cb::RunOptions run;
  run.shots = 0;
  const auto ideal = backend.ideal(prog);
  const double before = charter::stats::tvd(backend.run(prog, run), ideal);
  const double after =
      charter::stats::tvd(backend.run(mitigated, run), ideal);
  EXPECT_GT(before, 0.01);  // crosstalk hurts the parallel version
  EXPECT_LT(after, 0.8 * before);
}

TEST(Reversal, ResetIsNeverEligible) {
  cc::Circuit c(2);
  c.sx(0).reset(0).cx(0, 1);
  const auto eligible = co::reversible_ops(c, true);
  ASSERT_EQ(eligible.size(), 2u);
  EXPECT_EQ(c.op(eligible[0]).kind, GateKind::SX);
  EXPECT_EQ(c.op(eligible[1]).kind, GateKind::CX);
}

TEST(Analyzer, HandlesMidCircuitReset) {
  // The paper notes charter works around intermediate resets: gates before
  // and after a reset can still be reversed individually.
  cb::FakeBackend backend = uniform_backend(3);
  cc::Circuit logical(3);
  logical.h(0).cx(0, 1).reset(0).h(0).cx(0, 2);
  ct::TranspileOptions topts;
  topts.noise_aware = false;
  const cb::CompiledProgram prog = backend.compile(logical, topts);
  const co::CharterAnalyzer analyzer(backend, exact_options());
  const co::CharterReport report = analyzer.analyze(prog);
  EXPECT_GT(report.analyzed_gates, 4u);
  for (const auto& g : report.impacts) {
    EXPECT_NE(g.kind, GateKind::RESET);
    EXPECT_GE(g.tvd, 0.0);
  }
}

// ---- calibration baseline ----

TEST(Baseline, ScoresReflectModelRates) {
  cb::FakeBackend backend = uniform_backend(3, 1e-4, 5e-3);
  cc::Circuit logical(3);
  logical.h(0).cx(0, 1).cx(1, 2);
  const cb::CompiledProgram prog = compile_trivial(backend, logical);
  const auto ops = co::reversible_ops(prog.physical, true);
  co::BaselineOptions bopts;
  bopts.include_decoherence = false;
  const auto scores =
      co::calibration_scores(prog, backend.model(), ops, bopts);
  ASSERT_EQ(scores.size(), ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    const auto& g = prog.physical.op(ops[i]);
    if (g.kind == GateKind::CX)
      EXPECT_DOUBLE_EQ(scores[i], 5e-3);
    else
      EXPECT_DOUBLE_EQ(scores[i], 1e-4);
  }
}

TEST(Baseline, DecoherenceTermAddsDurationCost) {
  cb::FakeBackend backend = uniform_backend(2, 1e-4, 5e-3);
  backend.model().qubit(0).t1_ns = 10e3;
  cc::Circuit logical(2);
  logical.x(0);
  const cb::CompiledProgram prog = compile_trivial(backend, logical);
  const auto ops = co::reversible_ops(prog.physical, true);
  const auto with = co::calibration_scores(prog, backend.model(), ops);
  co::BaselineOptions without;
  without.include_decoherence = false;
  const auto bare =
      co::calibration_scores(prog, backend.model(), ops, without);
  EXPECT_GT(with[0], bare[0]);
}

TEST(Baseline, AgreesWhenCalibrationIsTheWholeStory) {
  // One dominant hot edge, no position effects to speak of: the baseline
  // and charter must broadly agree.
  cb::FakeBackend backend = uniform_backend(4);
  backend.model().edge(1, 2).cx_depol = 0.08;
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  const co::CharterAnalyzer analyzer(backend, exact_options());
  const co::CharterReport report = analyzer.analyze(prog);
  const auto cmp = co::compare_with_baseline(prog, backend.model(), report);
  EXPECT_GT(cmp.spearman.r, 0.4);
  EXPECT_GT(cmp.top_quartile_overlap, 0.5);
}

TEST(Baseline, MissesStateDependentImpact) {
  // Perfectly uniform calibration: the baseline sees identical CX scores
  // everywhere and cannot explain charter's measured variation; the
  // top-quartile overlap should be far from 1.
  cb::FakeBackend backend = uniform_backend(4, 1e-4, 8e-3);
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  const co::CharterAnalyzer analyzer(backend, exact_options());
  const co::CharterReport report = analyzer.analyze(prog);
  co::BaselineOptions bopts;
  bopts.include_decoherence = false;  // leave only the flat gate rates
  const auto cmp =
      co::compare_with_baseline(prog, backend.model(), report, bopts);
  EXPECT_LT(cmp.top_quartile_overlap, 1.0);
  EXPECT_EQ(cmp.gates, report.impacts.size());
}

TEST(Subsample, SinglePickDoesNotDivideByZero) {
  // Regression: limit == 1 used to compute step = (n-1)/(limit-1) = inf and
  // cast NaN/inf to size_t (UB).  A single pick takes the middle element.
  const std::vector<std::size_t> indices{2, 4, 6, 8, 10};
  const std::vector<std::size_t> one = co::subsample_evenly(indices, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one.front(), 6u);
}

TEST(Subsample, KeepsEndsAndRespectsCap) {
  const std::vector<std::size_t> indices{1, 3, 5, 7, 9, 11, 13};
  EXPECT_EQ(co::subsample_evenly(indices, 0), indices);     // 0 = no cap
  EXPECT_EQ(co::subsample_evenly(indices, 99), indices);    // cap above size
  const std::vector<std::size_t> two = co::subsample_evenly(indices, 2);
  ASSERT_EQ(two.size(), 2u);
  EXPECT_EQ(two.front(), 1u);
  EXPECT_EQ(two.back(), 13u);
  const std::vector<std::size_t> three = co::subsample_evenly(indices, 3);
  ASSERT_EQ(three.size(), 3u);
  EXPECT_EQ(three[1], 7u);
  EXPECT_TRUE(co::subsample_evenly({}, 1).empty());
}

TEST(Subsample, AnalyzerWithMaxGatesOneAnalyzesOneGate) {
  cb::FakeBackend backend = uniform_backend(3);
  const cb::CompiledProgram prog = compile_trivial(backend, ca::qft(3, 1));
  co::CharterOptions options = exact_options();
  options.max_gates = 1;
  const co::CharterReport report =
      co::CharterAnalyzer(backend, options).analyze(prog);
  EXPECT_EQ(report.analyzed_gates, 1u);
  ASSERT_EQ(report.impacts.size(), 1u);
  EXPECT_TRUE(std::isfinite(report.impacts.front().tvd));
}

// ---------------------------------------------------------------------------
// Metamorphic property: reversed-pair insertion is an ideal-circuit identity
// ---------------------------------------------------------------------------

namespace {

/// Noiseless output distribution of a circuit.
std::vector<double> ideal_distribution(const cc::Circuit& c) {
  charter::sim::Statevector sv(c.num_qubits());
  sv.apply(c);
  return sv.probabilities();
}

/// Seeded random circuit over a mixed (not just basis) gate pool.
cc::Circuit random_circuit(int n, int gates, charter::util::Rng& rng) {
  cc::Circuit c(n);
  const auto qubit = [&] { return static_cast<int>(rng.uniform_int(n)); };
  for (int k = 0; k < gates; ++k) {
    switch (rng.uniform_int(9)) {
      case 0: c.rz(qubit(), rng.uniform(-3.0, 3.0)); break;
      case 1: c.sx(qubit()); break;
      case 2: c.x(qubit()); break;
      case 3: c.h(qubit()); break;
      case 4: c.t(qubit()); break;
      case 5: c.rx(qubit(), rng.uniform(-3.0, 3.0)); break;
      case 6: c.ry(qubit(), rng.uniform(-3.0, 3.0)); break;
      case 7: c.s(qubit()); break;
      default: {
        const int a = qubit();
        int b = qubit();
        while (b == a) b = qubit();
        c.cx(a, b);
        break;
      }
    }
  }
  return c;
}

}  // namespace

TEST(ReversalMetamorphic, InsertionPreservesIdealDistributionAtEveryGate) {
  // The defining property of core::reversal, checked independently of the
  // analyzer: inserting r reversed pairs (U^dagger, U) after *any* eligible
  // gate of *any* circuit is an identity on the ideal (noiseless) output.
  // Random circuits over a mixed gate pool make this a metamorphic sweep
  // rather than a hand-picked example.
  charter::util::Rng rng(0xc4a27eULL);
  for (int trial = 0; trial < 3; ++trial) {
    const int n = 3 + trial;  // 3, 4, 5 qubits
    const cc::Circuit c = random_circuit(n, 24, rng);
    const std::vector<double> ideal = ideal_distribution(c);

    const std::vector<std::size_t> eligible = co::reversible_ops(c, false);
    ASSERT_GE(eligible.size(), 20u);
    for (const std::size_t g : eligible) {
      const int reversals = 1 + static_cast<int>(g % 3);
      for (const bool isolate : {true, false}) {
        const cc::Circuit reversed =
            co::insert_reversed_pairs(c, g, reversals, isolate);
        ASSERT_GT(reversed.size(), c.size());
        const std::vector<double> out = ideal_distribution(reversed);
        ASSERT_EQ(out.size(), ideal.size());
        for (std::size_t i = 0; i < ideal.size(); ++i)
          ASSERT_NEAR(out[i], ideal[i], 1e-12)
              << "trial " << trial << " gate " << g << " reversals "
              << reversals << " isolate " << isolate << " outcome " << i;
      }
    }
  }
}

TEST(ReversalMetamorphic, BlockReversalPreservesIdealDistribution) {
  charter::util::Rng rng(0xb10cULL);
  const cc::Circuit c = random_circuit(4, 20, rng);
  const std::vector<double> ideal = ideal_distribution(c);
  for (const int reversals : {1, 2}) {
    const cc::Circuit reversed =
        co::insert_block_reversal(c, 0, c.size() / 2, reversals, true);
    const std::vector<double> out = ideal_distribution(reversed);
    for (std::size_t i = 0; i < ideal.size(); ++i)
      ASSERT_NEAR(out[i], ideal[i], 1e-12) << "outcome " << i;
  }
}
