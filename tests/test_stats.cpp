// Tests for the statistics library: TVD properties, Pearson/Spearman
// correlations against known values (SciPy semantics), and ranking helpers.

#include <gtest/gtest.h>

#include <vector>

#include "stats/stats.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace st = charter::stats;

TEST(Tvd, IdenticalDistributionsAreZero) {
  const std::vector<double> p = {0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(st::tvd(p, p), 0.0);
}

TEST(Tvd, DisjointDistributionsAreOne) {
  const std::vector<double> p = {1.0, 0.0};
  const std::vector<double> q = {0.0, 1.0};
  EXPECT_DOUBLE_EQ(st::tvd(p, q), 1.0);
}

TEST(Tvd, MatchesPaperFormulaExample) {
  // Fig. 3a: sum of absolute differences over two.
  const std::vector<double> p = {0.6, 0.2, 0.1, 0.1};
  const std::vector<double> q = {0.3, 0.3, 0.2, 0.2};
  EXPECT_NEAR(st::tvd(p, q), 0.5 * (0.3 + 0.1 + 0.1 + 0.1), 1e-12);
}

TEST(Tvd, SymmetricAndBounded) {
  charter::util::Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> p(8), q(8);
    double sp = 0.0, sq = 0.0;
    for (int i = 0; i < 8; ++i) {
      p[i] = rng.uniform();
      q[i] = rng.uniform();
      sp += p[i];
      sq += q[i];
    }
    for (int i = 0; i < 8; ++i) {
      p[i] /= sp;
      q[i] /= sq;
    }
    const double d = st::tvd(p, q);
    EXPECT_DOUBLE_EQ(d, st::tvd(q, p));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(Tvd, TriangleInequality) {
  const std::vector<double> a = {0.7, 0.2, 0.1};
  const std::vector<double> b = {0.2, 0.5, 0.3};
  const std::vector<double> c = {0.1, 0.3, 0.6};
  EXPECT_LE(st::tvd(a, c), st::tvd(a, b) + st::tvd(b, c) + 1e-12);
}

TEST(Tvd, SizeMismatchThrows) {
  const std::vector<double> p = {1.0};
  const std::vector<double> q = {0.5, 0.5};
  EXPECT_THROW(st::tvd(p, q), charter::InvalidArgument);
}

TEST(Pearson, PerfectPositiveCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {2, 4, 6, 8, 10};
  const auto c = st::pearson(x, y);
  EXPECT_NEAR(c.r, 1.0, 1e-12);
  EXPECT_NEAR(c.p_value, 0.0, 1e-9);
}

TEST(Pearson, PerfectNegativeCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {8, 6, 4, 2};
  EXPECT_NEAR(st::pearson(x, y).r, -1.0, 1e-12);
}

TEST(Pearson, KnownValueAgainstScipy) {
  // scipy.stats.pearsonr([1,2,3,4,5],[1,3,2,5,4]) = (0.8, 0.1041...)
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 3, 2, 5, 4};
  const auto c = st::pearson(x, y);
  EXPECT_NEAR(c.r, 0.8, 1e-12);
  EXPECT_NEAR(c.p_value, 0.104088, 1e-4);
}

TEST(Pearson, UncorrelatedDataHasHighPValue) {
  charter::util::Rng rng(7);
  std::vector<double> x(50), y(50);
  for (int i = 0; i < 50; ++i) {
    x[i] = rng.normal();
    y[i] = rng.normal();
  }
  const auto c = st::pearson(x, y);
  EXPECT_LT(std::abs(c.r), 0.35);
  EXPECT_GT(c.p_value, 0.01);
}

TEST(Pearson, DegenerateInputs) {
  const std::vector<double> flat = {1.0, 1.0, 1.0, 1.0};
  const std::vector<double> y = {1.0, 2.0, 3.0, 4.0};
  const auto c = st::pearson(flat, y);
  EXPECT_DOUBLE_EQ(c.r, 0.0);
  EXPECT_DOUBLE_EQ(c.p_value, 1.0);
  const std::vector<double> tiny = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(st::pearson(tiny, tiny).r, 0.0);
}

TEST(Spearman, MonotonicNonlinearIsPerfect) {
  const std::vector<double> x = {1, 2, 3, 4, 5};
  const std::vector<double> y = {1, 8, 27, 64, 125};  // x^3
  EXPECT_NEAR(st::spearman(x, y).r, 1.0, 1e-12);
}

TEST(Spearman, HandlesTies) {
  const std::vector<double> x = {1, 2, 2, 4};
  const std::vector<double> y = {10, 20, 20, 40};
  EXPECT_NEAR(st::spearman(x, y).r, 1.0, 1e-12);
}

TEST(Ranking, DescendingOrder) {
  const std::vector<double> v = {0.1, 0.9, 0.5, 0.7};
  const auto order = st::rank_descending(v);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], 1u);
  EXPECT_EQ(order[1], 3u);
  EXPECT_EQ(order[2], 2u);
  EXPECT_EQ(order[3], 0u);
}

TEST(Ranking, TopFractionCeil) {
  const std::vector<double> v = {0.1, 0.9, 0.5, 0.7, 0.3};
  // 25% of 5 -> ceil(1.25) = 2 entries.
  const auto top = st::top_fraction(v, 0.25);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 1u);
  EXPECT_EQ(top[1], 3u);
}

TEST(Ranking, TopFractionAtLeastOne) {
  const std::vector<double> v = {0.4, 0.2};
  EXPECT_EQ(st::top_fraction(v, 0.01).size(), 1u);
  EXPECT_THROW(st::top_fraction(v, 0.0), charter::InvalidArgument);
}

TEST(Moments, MeanAndStddev) {
  const std::vector<double> v = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(st::mean(v), 5.0);
  EXPECT_DOUBLE_EQ(st::stddev(v), 2.0);
}
