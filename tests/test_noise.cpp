// Tests for the noise library: model bookkeeping, calibration generation,
// drift, and the noisy executor's physical ordering (decoherence windows,
// lazy ZZ flushing, crosstalk attachment).

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "noise/calibration.hpp"
#include "noise/executor.hpp"
#include "noise/noise_model.hpp"
#include "sim/density_matrix.hpp"
#include "stats/stats.hpp"
#include "util/error.hpp"

namespace cc = charter::circ;
namespace cn = charter::noise;
namespace cs = charter::sim;
using cc::GateKind;

namespace {

/// A noise model with everything switched off (then tests enable pieces).
cn::NoiseModel quiet_model(int n, const std::vector<std::pair<int, int>>& edges) {
  cn::NoiseModel m(n);
  for (int q = 0; q < n; ++q) {
    m.qubit(q).t1_ns = 1e18;
    m.qubit(q).t2_ns = 1e18;
    m.qubit(q).prep_error = 0.0;
    m.qubit(q).readout = {};
    for (GateKind k : {GateKind::SX, GateKind::X}) {
      m.gate_1q(k, q).depol = 0.0;
      m.gate_1q(k, q).overrot_frac = 0.0;
    }
  }
  for (const auto& [a, b] : edges) {
    cn::EdgeCal e;
    e.cx_depol = 0.0;
    e.cx_zz_angle = 0.0;
    e.static_zz_rate = 0.0;
    e.drive_zz_rate = 0.0;
    m.add_edge(a, b, e);
  }
  return m;
}

}  // namespace

TEST(NoiseModel, EdgeLookupIsSymmetric) {
  cn::NoiseModel m(3);
  cn::EdgeCal e;
  e.cx_depol = 0.05;
  m.add_edge(0, 1, e);
  EXPECT_TRUE(m.has_edge(0, 1));
  EXPECT_TRUE(m.has_edge(1, 0));
  EXPECT_FALSE(m.has_edge(1, 2));
  EXPECT_DOUBLE_EQ(m.edge(1, 0).cx_depol, 0.05);
  EXPECT_THROW(m.edge(0, 2), charter::InvalidArgument);
}

TEST(NoiseModel, SxdgSharesSxCalibration) {
  cn::NoiseModel m(2);
  m.gate_1q(GateKind::SX, 0).depol = 0.123;
  EXPECT_DOUBLE_EQ(m.gate_1q(GateKind::SXDG, 0).depol, 0.123);
}

TEST(NoiseModel, DecoherenceProbabilities) {
  cn::NoiseModel m(1);
  m.qubit(0).t1_ns = 100.0;
  m.qubit(0).t2_ns = 100.0;
  // gamma = 1 - exp(-dt/T1).
  EXPECT_NEAR(m.gamma_for(0, 100.0), 1.0 - std::exp(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(m.gamma_for(0, 0.0), 0.0);
  // With T2 = T1, pure dephasing rate = 1/T2 - 1/(2 T1) = 1/(2 T1).
  EXPECT_NEAR(m.pz_for(0, 100.0), 0.5 * (1.0 - std::exp(-0.5)), 1e-12);
  // T2 = 2 T1 means no pure dephasing at all.
  m.qubit(0).t2_ns = 200.0;
  EXPECT_DOUBLE_EQ(m.pz_for(0, 50.0), 0.0);
}

TEST(NoiseModel, TogglesSuppressChannels) {
  cn::NoiseModel m(1);
  m.toggles().decoherence = false;
  EXPECT_DOUBLE_EQ(m.gamma_for(0, 1e6), 0.0);
  m.toggles().readout = false;
  EXPECT_DOUBLE_EQ(m.readout_errors()[0].p_meas0_given1, 0.0);
}

TEST(NoiseModel, DurationLookup) {
  cn::NoiseModel m(2);
  m.add_edge(0, 1);
  EXPECT_DOUBLE_EQ(m.duration(cc::make_gate(GateKind::RZ, {0}, {0.3})), 0.0);
  EXPECT_DOUBLE_EQ(m.duration(cc::make_gate(GateKind::SX, {1})), 35.0);
  EXPECT_DOUBLE_EQ(m.duration(cc::make_gate(GateKind::CX, {0, 1})), 300.0);
  EXPECT_THROW(m.duration(cc::make_gate(GateKind::H, {0})),
               charter::InvalidArgument);
}

TEST(Calibration, DeterministicInSeed) {
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}};
  const cn::NoiseModel a = cn::generate_calibration(3, edges, 42);
  const cn::NoiseModel b = cn::generate_calibration(3, edges, 42);
  const cn::NoiseModel c = cn::generate_calibration(3, edges, 43);
  EXPECT_DOUBLE_EQ(a.qubit(1).t1_ns, b.qubit(1).t1_ns);
  EXPECT_DOUBLE_EQ(a.edge(0, 1).cx_depol, b.edge(0, 1).cx_depol);
  EXPECT_NE(a.qubit(1).t1_ns, c.qubit(1).t1_ns);
}

TEST(Calibration, ParametersInPhysicalRanges) {
  const std::vector<std::pair<int, int>> edges = {{0, 1}, {1, 2}, {2, 3}};
  const cn::NoiseModel m = cn::generate_calibration(4, edges, 7);
  for (int q = 0; q < 4; ++q) {
    EXPECT_GT(m.qubit(q).t1_ns, 1e3);
    EXPECT_LE(m.qubit(q).t2_ns, 2.0 * m.qubit(q).t1_ns + 1e-9);
    EXPECT_GT(m.gate_1q(GateKind::SX, q).depol, 0.0);
    EXPECT_LT(m.gate_1q(GateKind::SX, q).depol, 0.1 + 1e-12);
    EXPECT_GE(m.qubit(q).readout.p_meas1_given0, 0.0);
    EXPECT_LE(m.qubit(q).readout.p_meas0_given1, 0.3 + 1e-12);
  }
  for (const auto& [a, b] : m.edges()) {
    EXPECT_GT(m.edge(a, b).cx_depol, 0.0);
    EXPECT_GE(m.edge(a, b).cx_duration_ns, 120.0);
  }
}

TEST(Calibration, QubitsAreHeterogeneous) {
  const cn::NoiseModel m =
      cn::generate_calibration(6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}, 9);
  double lo = 1e30, hi = 0.0;
  for (int q = 0; q < 6; ++q) {
    lo = std::min(lo, m.qubit(q).t1_ns);
    hi = std::max(hi, m.qubit(q).t1_ns);
  }
  EXPECT_GT(hi / lo, 1.1);  // spread exists
}

TEST(Drift, PerturbsButStaysClose) {
  const cn::NoiseModel base = cn::generate_calibration(3, {{0, 1}, {1, 2}}, 5);
  const cn::NoiseModel drifted = base.with_drift(77, 0.05);
  const double ratio =
      drifted.edge(0, 1).cx_depol / base.edge(0, 1).cx_depol;
  EXPECT_NE(ratio, 1.0);
  EXPECT_GT(ratio, 0.7);
  EXPECT_LT(ratio, 1.4);
  // Deterministic in the run seed.
  const cn::NoiseModel again = base.with_drift(77, 0.05);
  EXPECT_DOUBLE_EQ(drifted.edge(0, 1).cx_depol, again.edge(0, 1).cx_depol);
}

TEST(Drift, ZeroMagnitudeIsIdentity) {
  const cn::NoiseModel base = cn::generate_calibration(2, {{0, 1}}, 5);
  const cn::NoiseModel same = base.with_drift(1, 0.0);
  EXPECT_DOUBLE_EQ(base.qubit(0).t1_ns, same.qubit(0).t1_ns);
}

// ---- executor ----

TEST(Executor, QuietModelReproducesIdealOutput) {
  cn::NoiseModel m = quiet_model(2, {{0, 1}});
  cc::Circuit c(2);
  c.rz(0, M_PI_2).sx(0).rz(0, M_PI_2).cx(0, 1);  // H-equivalent then CX
  cs::DensityMatrixEngine dm(2);
  cn::NoisyExecutor(m).run(c, dm);
  const auto p = dm.probabilities();
  EXPECT_NEAR(p[0], 0.5, 1e-10);
  EXPECT_NEAR(p[3], 0.5, 1e-10);
}

TEST(Executor, RejectsNonBasisGates) {
  cn::NoiseModel m = quiet_model(2, {{0, 1}});
  cc::Circuit c(2);
  c.h(0);
  cs::DensityMatrixEngine dm(2);
  EXPECT_THROW(cn::NoisyExecutor(m).run(c, dm), charter::InvalidArgument);
}

TEST(Executor, RejectsUncoupledCx) {
  cn::NoiseModel m = quiet_model(3, {{0, 1}});
  cc::Circuit c(3);
  c.cx(0, 2);
  cs::DensityMatrixEngine dm(3);
  EXPECT_THROW(cn::NoisyExecutor(m).run(c, dm), charter::InvalidArgument);
}

TEST(Executor, PrepErrorShowsInOutput) {
  cn::NoiseModel m = quiet_model(1, {});
  m.qubit(0).prep_error = 0.25;
  cc::Circuit c(1);
  c.id(0);
  cs::DensityMatrixEngine dm(1);
  cn::NoisyExecutor(m).run(c, dm);
  EXPECT_NEAR(dm.probabilities()[1], 0.25, 1e-12);
}

TEST(Executor, DecoherenceScalesWithIdleTime) {
  // Qubit 1 idles while qubit 0 runs gates; its damping must match the
  // makespan exactly.
  cn::NoiseModel m = quiet_model(2, {{0, 1}});
  m.qubit(1).t1_ns = 1000.0;
  m.qubit(1).t2_ns = 2000.0;  // no pure dephasing
  cc::Circuit c(2);
  c.x(1);                 // excites qubit 1 during t = 0..35 ns
  c.x(0).x(0).x(0).x(0);  // keeps qubit 0 busy until t = 140 ns
  cs::DensityMatrixEngine dm(2);
  cn::NoisyExecutor(m).run(c, dm);
  // Executor convention: the gate unitary is applied at the start of its
  // window and the qubit then damps across the window.  Qubit 1 is excited
  // from t=0 (gate applied) through the makespan at t=140, so it damps for
  // the full 140 ns.
  const double gamma = 1.0 - std::exp(-140.0 / 1000.0);
  EXPECT_NEAR(dm.probabilities()[0], gamma, 1e-10);
}

TEST(Executor, DepolarizingAppliedPerGate) {
  cn::NoiseModel m = quiet_model(1, {});
  m.gate_1q(GateKind::X, 0).depol = 0.12;
  cc::Circuit c(1);
  c.x(0);
  cs::DensityMatrixEngine dm(1);
  cn::NoisyExecutor(m).run(c, dm);
  // X then depolarizing(p): P(0) = 2p/3.
  EXPECT_NEAR(dm.probabilities()[0], 2.0 * 0.12 / 3.0, 1e-12);
}

TEST(Executor, OverrotationIsCoherent) {
  cn::NoiseModel m = quiet_model(1, {});
  m.gate_1q(GateKind::X, 0).overrot_frac = 0.1;  // X rotates by 1.1 pi
  cc::Circuit c(1);
  c.x(0);
  cs::DensityMatrixEngine dm(1);
  cn::NoisyExecutor(m).run(c, dm);
  EXPECT_NEAR(dm.probabilities()[1], std::pow(std::sin(1.1 * M_PI / 2.0), 2),
              1e-12);
  // Toggle off -> perfect flip.
  m.toggles().coherent = false;
  cs::DensityMatrixEngine dm2(1);
  cn::NoisyExecutor(m).run(c, dm2);
  EXPECT_NEAR(dm2.probabilities()[1], 1.0, 1e-12);
}

TEST(Executor, SxdgUsesSameMiscalibrationAsSx) {
  // With a pure over-rotation error and no other noise, SXDG then SX gives
  // the identity (the pair echoes the coherent error out) — the hardware
  // behavior charter's reversed pairs rely on.
  cn::NoiseModel m = quiet_model(1, {});
  m.gate_1q(GateKind::SX, 0).overrot_frac = 0.2;
  cc::Circuit c(1);
  c.sxdg(0).sx(0);
  cs::DensityMatrixEngine dm(1);
  cn::NoisyExecutor(m).run(c, dm);
  EXPECT_NEAR(dm.probabilities()[0], 1.0, 1e-12);
}

TEST(Executor, StaticZzAccumulatesOverTime) {
  // |++> under static ZZ accumulates a two-qubit phase that shows up after
  // basis rotation; verify against the analytic expectation.
  cn::NoiseModel m = quiet_model(2, {{0, 1}});
  m.edge(0, 1).static_zz_rate = 1e-3;  // rad/ns
  cc::Circuit c(2);
  // Build |++>: H ~ RZ(pi/2) SX RZ(pi/2).
  for (int q : {0, 1}) c.rz(q, M_PI_2).sx(q).rz(q, M_PI_2);
  // Let the state idle for a while via X X on qubit 0 (2 * 35 ns), then undo.
  c.x(0).x(0);
  // Rotate back and measure.
  for (int q : {0, 1}) c.rz(q, M_PI_2).sx(q).rz(q, M_PI_2);
  cs::DensityMatrixEngine dm(2);
  cn::NoisyExecutor(m).run(c, dm);
  // Without ZZ this would return exactly |00>.
  EXPECT_LT(dm.probabilities()[0], 1.0 - 1e-4);

  // With the crosstalk toggle off it must return |00> exactly.
  m.toggles().static_zz = false;
  cs::DensityMatrixEngine dm2(2);
  cn::NoisyExecutor(m).run(c, dm2);
  EXPECT_NEAR(dm2.probabilities()[0], 1.0, 1e-10);
}

TEST(Executor, DriveCrosstalkOnlyWhenOverlapping) {
  // Two simultaneous X gates on coupled qubits pick up drive ZZ; serialized
  // by a barrier they do not.
  cn::NoiseModel m = quiet_model(2, {{0, 1}});
  m.edge(0, 1).drive_zz_rate = 2e-3;
  const auto build = [](bool serial) {
    cc::Circuit c(2);
    // |++> prep with the per-qubit SX gates serialized by barriers so the
    // prep itself never overlaps — only the middle X pair is under test.
    c.rz(0, M_PI_2).sx(0).rz(0, M_PI_2).barrier();
    c.rz(1, M_PI_2).sx(1).rz(1, M_PI_2).barrier();
    c.x(0);
    if (serial) c.barrier();
    c.x(1);
    c.barrier();
    c.rz(0, M_PI_2).sx(0).rz(0, M_PI_2).barrier();
    c.rz(1, M_PI_2).sx(1).rz(1, M_PI_2);
    return c;
  };
  cs::DensityMatrixEngine par(2), ser(2);
  cn::NoisyExecutor(m).run(build(false), par);
  cn::NoisyExecutor(m).run(build(true), ser);
  EXPECT_NEAR(ser.probabilities()[0], 1.0, 1e-10);   // no overlap -> clean
  EXPECT_LT(par.probabilities()[0], 1.0 - 1e-4);     // overlap -> phase error
}

TEST(Executor, RzIsCompletelyFree) {
  // Inserting RZ gates must not change timing or noise at all.
  cn::NoiseModel m = quiet_model(2, {{0, 1}});
  m.qubit(0).t1_ns = 500.0;
  m.qubit(1).t1_ns = 500.0;
  m.edge(0, 1).static_zz_rate = 1e-3;

  cc::Circuit without(2);
  without.x(0).cx(0, 1);
  cc::Circuit with(2);
  with.rz(0, 0.7).x(0).rz(1, -0.3).rz(1, 0.3).cx(0, 1).rz(0, -0.7);

  cs::DensityMatrixEngine a(2), b(2);
  cn::NoisyExecutor(m).run(without, a);
  cn::NoisyExecutor(m).run(with, b);
  // The RZ-padded circuit differs only by exact frame changes; the
  // populations (probabilities) must be identical.
  const auto pa = a.probabilities();
  const auto pb = b.probabilities();
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_NEAR(pa[i], pb[i], 1e-10);
}

TEST(Executor, ScheduleMatchesModelDurations) {
  cn::NoiseModel m = quiet_model(2, {{0, 1}});
  m.edge(0, 1).cx_duration_ns = 250.0;
  cc::Circuit c(2);
  c.sx(0).cx(0, 1);
  const auto sched = cn::NoisyExecutor(m).make_schedule(c);
  EXPECT_DOUBLE_EQ(sched.ops[1].t_start, 35.0);
  EXPECT_DOUBLE_EQ(sched.total_time, 285.0);
}

TEST(Executor, ResetCollapsesToGround) {
  cn::NoiseModel m = quiet_model(2, {{0, 1}});
  cc::Circuit c(2);
  // Entangle, then reset qubit 0: the marginal on qubit 1 must survive.
  c.rz(0, M_PI_2).sx(0).rz(0, M_PI_2);  // H
  c.cx(0, 1);
  c.reset(0);
  cs::DensityMatrixEngine dm(2);
  cn::NoisyExecutor(m).run(c, dm);
  const auto p = dm.probabilities();
  // Qubit 0 is |0> with certainty; qubit 1 keeps its 50/50 mixture.
  EXPECT_NEAR(p[0], 0.5, 1e-10);
  EXPECT_NEAR(p[2], 0.5, 1e-10);
  EXPECT_NEAR(p[1] + p[3], 0.0, 1e-10);
}

TEST(Executor, ResetTakesTime) {
  cn::NoiseModel m = quiet_model(1, {});
  m.reset_duration_ns = 500.0;
  cc::Circuit c(1);
  c.x(0).reset(0);
  const auto sched = cn::NoisyExecutor(m).make_schedule(c);
  EXPECT_DOUBLE_EQ(sched.total_time, 35.0 + 500.0);
}
