// Tests for the transpiler: topology graphs, basis decomposition identities
// (every rewrite preserves semantics), Euler synthesis, optimization passes,
// routing legality, and end-to-end semantic preservation through the full
// pipeline.

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "algos/algorithms.hpp"
#include "circuit/circuit.hpp"
#include "noise/calibration.hpp"
#include "sim/statevector.hpp"
#include "stats/stats.hpp"
#include "transpile/decompose.hpp"
#include "transpile/passes.hpp"
#include "transpile/routing.hpp"
#include "transpile/topology.hpp"
#include "transpile/transpiler.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cc = charter::circ;
namespace cm = charter::math;
namespace cs = charter::sim;
namespace ct = charter::transpile;
using cc::GateKind;

namespace {

double dist(const std::vector<double>& a, const std::vector<double>& b) {
  return charter::stats::tvd(a, b);
}

/// Random logical circuit drawing from the full gate set.
cc::Circuit random_logical_circuit(int n, int gates, charter::util::Rng& rng) {
  cc::Circuit c(n);
  for (int i = 0; i < gates; ++i) {
    const int q = static_cast<int>(rng.uniform_int(n));
    int q2 = static_cast<int>(rng.uniform_int(n));
    while (q2 == q) q2 = static_cast<int>(rng.uniform_int(n));
    switch (rng.uniform_int(10)) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.rx(q, rng.uniform(-M_PI, M_PI)); break;
      case 3: c.ry(q, rng.uniform(-M_PI, M_PI)); break;
      case 4: c.rz(q, rng.uniform(-M_PI, M_PI)); break;
      case 5: c.cx(q, q2); break;
      case 6: c.cp(q, q2, rng.uniform(-M_PI, M_PI)); break;
      case 7: c.rzz(q, q2, rng.uniform(-M_PI, M_PI)); break;
      case 8: c.swap(q, q2); break;
      default: c.sx(q); break;
    }
  }
  return c;
}

}  // namespace

// ---- topology ----

TEST(Topology, LagosMatchesPaperFig4) {
  const ct::Topology topo = ct::ibm_lagos();
  EXPECT_EQ(topo.num_qubits(), 7);
  EXPECT_EQ(topo.edges().size(), 6u);
  EXPECT_TRUE(topo.connected(0, 1));
  EXPECT_TRUE(topo.connected(1, 3));
  EXPECT_TRUE(topo.connected(3, 5));
  EXPECT_FALSE(topo.connected(0, 2));
  EXPECT_FALSE(topo.connected(2, 3));
  // Qubits 0,1,2,3 form a T shape: 0-1, 1-2, 1-3 (used by the paper's
  // multi-architecture VQE analysis).
  EXPECT_TRUE(topo.connected(1, 2));
  EXPECT_EQ(topo.distance(0, 6), 4);
}

TEST(Topology, GuadalupeMatchesPaperFig4) {
  const ct::Topology topo = ct::ibmq_guadalupe();
  EXPECT_EQ(topo.num_qubits(), 16);
  EXPECT_EQ(topo.edges().size(), 16u);
  // First four qubits form a line: 0-1, 1-2, 2-3.
  EXPECT_TRUE(topo.connected(0, 1));
  EXPECT_TRUE(topo.connected(1, 2));
  EXPECT_TRUE(topo.connected(2, 3));
  EXPECT_FALSE(topo.connected(0, 2));
  // Graph is connected.
  for (int q = 0; q < 16; ++q) EXPECT_GE(topo.distance(0, q), 0);
}

TEST(Topology, SyntheticShapes) {
  EXPECT_EQ(ct::line(5).edges().size(), 4u);
  EXPECT_EQ(ct::ring(5).edges().size(), 5u);
  EXPECT_EQ(ct::grid(2, 3).edges().size(), 7u);
  EXPECT_EQ(ct::full(4).edges().size(), 6u);
  EXPECT_EQ(ct::line(4).distance(0, 3), 3);
  EXPECT_EQ(ct::ring(6).distance(0, 5), 1);
}

// ---- Euler synthesis ----

TEST(Euler, ZyzRoundTripsRandomUnitaries) {
  charter::util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    // Random unitary via composed rotations.
    cc::Circuit c(1);
    c.rz(0, rng.uniform(-M_PI, M_PI))
        .ry(0, rng.uniform(-M_PI, M_PI))
        .rz(0, rng.uniform(-M_PI, M_PI));
    cm::Mat2 u = cm::Mat2::identity();
    for (const cc::Gate& g : c.ops())
      u = cm::mul(cc::gate_unitary_1q(g), u);

    const ct::EulerAngles e = ct::zyz_decompose(u);
    // Rebuild RZ(phi) RY(theta) RZ(lambda) and compare up to phase.
    const cm::Mat2 rebuilt = cm::mul(
        cc::gate_unitary_1q(cc::make_gate(GateKind::RZ, {0}, {e.phi})),
        cm::mul(cc::gate_unitary_1q(cc::make_gate(GateKind::RY, {0},
                                                  {e.theta})),
                cc::gate_unitary_1q(
                    cc::make_gate(GateKind::RZ, {0}, {e.lambda}))));
    EXPECT_TRUE(cm::equal_up_to_phase(rebuilt, u, 1e-9)) << "trial " << trial;
  }
}

TEST(Euler, SynthesizedSequenceMatchesUnitary) {
  charter::util::Rng rng(4);
  for (int trial = 0; trial < 50; ++trial) {
    cc::Circuit c(1);
    c.rz(0, rng.uniform(-M_PI, M_PI))
        .ry(0, rng.uniform(-M_PI, M_PI))
        .rz(0, rng.uniform(-M_PI, M_PI));
    cm::Mat2 u = cm::Mat2::identity();
    for (const cc::Gate& g : c.ops())
      u = cm::mul(cc::gate_unitary_1q(g), u);

    cm::Mat2 syn = cm::Mat2::identity();
    int sx_count = 0;
    for (const cc::Gate& g : ct::synthesize_1q(u, 0)) {
      EXPECT_TRUE(cc::is_basis_gate(g.kind));
      if (g.kind == GateKind::SX) ++sx_count;
      syn = cm::mul(cc::gate_unitary_1q(g), syn);
    }
    EXPECT_LE(sx_count, 2);
    EXPECT_TRUE(cm::equal_up_to_phase(syn, u, 1e-8)) << "trial " << trial;
  }
}

TEST(Euler, DiagonalBecomesSingleRz) {
  const auto gates = ct::synthesize_1q(
      cc::gate_unitary_1q(cc::make_gate(GateKind::RZ, {0}, {0.7})), 0);
  ASSERT_EQ(gates.size(), 1u);
  EXPECT_EQ(gates[0].kind, GateKind::RZ);
  EXPECT_NEAR(gates[0].params[0], 0.7, 1e-10);
}

TEST(Euler, IdentityBecomesNothing) {
  EXPECT_TRUE(ct::synthesize_1q(cm::Mat2::identity(), 0).empty());
}

// ---- decomposition identities (property-tested per kind) ----

namespace {

/// Checks that decompose_to_basis preserves the action on 12 random states.
void expect_same_action(const cc::Circuit& logical) {
  const cc::Circuit basis = ct::decompose_to_basis(logical);
  for (const cc::Gate& g : basis.ops())
    ASSERT_TRUE(cc::is_basis_gate(g.kind) || g.kind == GateKind::BARRIER)
        << cc::gate_name(g.kind);
  charter::util::Rng rng(7);
  for (int trial = 0; trial < 3; ++trial) {
    cs::Statevector a(logical.num_qubits()), b(logical.num_qubits());
    const std::uint64_t start = rng.uniform_int(a.dim());
    a.set_basis_state(start);
    b.set_basis_state(start);
    // Scramble into superposition first so phases matter.
    cc::Circuit pre(logical.num_qubits());
    for (int q = 0; q < logical.num_qubits(); ++q)
      pre.h(q).rz(q, rng.uniform(-M_PI, M_PI));
    a.apply(pre);
    b.apply(pre);
    a.apply(logical);
    b.apply(basis);
    const cm::cplx overlap = a.inner_product(b);
    EXPECT_NEAR(std::abs(overlap), 1.0, 1e-8);
  }
}

}  // namespace

class DecomposeKind : public ::testing::TestWithParam<GateKind> {};

TEST_P(DecomposeKind, PreservesSemantics) {
  charter::util::Rng rng(9);
  const GateKind kind = GetParam();
  const int arity = cc::gate_arity(kind);
  const int width = std::max(2, arity);
  for (int trial = 0; trial < 4; ++trial) {
    cc::Circuit c(width);
    std::initializer_list<double> no_params = {};
    const int np = cc::gate_param_count(kind);
    if (arity == 1) {
      if (np == 0)
        c.append(cc::make_gate(kind, {0}, no_params));
      else if (np == 1)
        c.append(cc::make_gate(kind, {0}, {rng.uniform(-M_PI, M_PI)}));
      else
        c.append(cc::make_gate(kind, {0},
                               {rng.uniform(-M_PI, M_PI),
                                rng.uniform(-M_PI, M_PI),
                                rng.uniform(-M_PI, M_PI)}));
    } else if (arity == 2) {
      if (np == 0)
        c.append(cc::make_gate(kind, {1, 0}, no_params));
      else
        c.append(cc::make_gate(kind, {1, 0}, {rng.uniform(-M_PI, M_PI)}));
    } else {
      c.append(cc::make_gate(kind, {0, 2, 1}, no_params));
    }
    expect_same_action(c);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllLogicalKinds, DecomposeKind,
    ::testing::Values(GateKind::H, GateKind::S, GateKind::SDG, GateKind::T,
                      GateKind::TDG, GateKind::RX, GateKind::RY, GateKind::U3,
                      GateKind::CZ, GateKind::CP, GateKind::CRZ,
                      GateKind::SWAP, GateKind::RZZ, GateKind::RXX,
                      GateKind::RYY, GateKind::CCX),
    [](const auto& info) { return cc::gate_name(info.param); });

TEST(Decompose, RandomCircuitsPreserved) {
  charter::util::Rng rng(11);
  for (int trial = 0; trial < 6; ++trial)
    expect_same_action(random_logical_circuit(4, 25, rng));
}

TEST(Decompose, FlagsPropagate) {
  cc::Circuit c(2);
  c.h(0, cc::kFlagInputPrep);
  c.rzz(0, 1, 0.5);
  const cc::Circuit basis = ct::decompose_to_basis(c);
  std::size_t prep_gates = 0;
  for (const cc::Gate& g : basis.ops())
    if (g.has_flag(cc::kFlagInputPrep)) ++prep_gates;
  EXPECT_GE(prep_gates, 2u);  // H expands to >= 2 flagged basis gates
  // And the RZZ expansion is unflagged.
  EXPECT_LT(prep_gates, basis.size());
}

// ---- optimization passes ----

TEST(Passes, MergeRzCombinesAndDropsZeros) {
  cc::Circuit c(2);
  c.rz(0, 0.3).rz(0, 0.4).sx(0).rz(1, 1.0).rz(1, -1.0).cx(0, 1);
  const cc::Circuit opt = ct::merge_rz(c);
  EXPECT_EQ(opt.count_kind(GateKind::RZ), 1u);
  EXPECT_NEAR(opt.op(0).params[0], 0.7, 1e-12);
}

TEST(Passes, MergeRzRespectsBarriers) {
  cc::Circuit c(1);
  c.rz(0, 0.3).barrier().rz(0, 0.4);
  const cc::Circuit opt = ct::merge_rz(c);
  EXPECT_EQ(opt.count_kind(GateKind::RZ), 2u);
}

TEST(Passes, CancelInversePairs) {
  cc::Circuit c(2);
  c.x(0).x(0).sx(1).sxdg(1).cx(0, 1).cx(0, 1);
  const cc::Circuit opt = ct::cancel_inverse_pairs(c);
  EXPECT_EQ(opt.size(), 0u);
}

TEST(Passes, CancelRespectsInterveningGates) {
  cc::Circuit c(2);
  c.cx(0, 1).rz(1, 0.5).cx(0, 1);  // RZ on target blocks cancellation
  const cc::Circuit opt = ct::cancel_inverse_pairs(c);
  EXPECT_EQ(opt.count_kind(GateKind::CX), 2u);
}

TEST(Passes, CancelCascades) {
  cc::Circuit c(1);
  c.sx(0).x(0).x(0).sxdg(0);  // inner pair cancels, then outer pair
  const cc::Circuit opt = ct::cancel_inverse_pairs(c);
  EXPECT_EQ(opt.size(), 0u);
}

TEST(Passes, Fuse1qShortensRuns) {
  cc::Circuit c(1);
  for (int i = 0; i < 10; ++i) c.sx(0);
  c.rz(0, 0.2);
  const cc::Circuit opt = ct::fuse_1q_runs(c);
  EXPECT_LE(opt.size(), 5u);
  // Semantics preserved.
  cs::Statevector a(1), b(1);
  a.apply(c);
  b.apply(opt);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, 1e-9);
}

TEST(Passes, OptimizePreservesSemanticsOnRandomCircuits) {
  charter::util::Rng rng(13);
  for (int level : {1, 2, 3}) {
    for (int trial = 0; trial < 4; ++trial) {
      const cc::Circuit logical = random_logical_circuit(4, 30, rng);
      const cc::Circuit basis = ct::decompose_to_basis(logical);
      const cc::Circuit opt = ct::optimize(basis, level);
      EXPECT_LE(opt.size(), basis.size());
      cs::Statevector a(4), b(4);
      cc::Circuit pre(4);
      for (int q = 0; q < 4; ++q) pre.h(q).rz(q, rng.uniform(-1.0, 1.0));
      a.apply(pre);
      b.apply(pre);
      a.apply(basis);
      b.apply(opt);
      EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, 1e-8)
          << "level " << level << " trial " << trial;
    }
  }
}

// ---- routing ----

TEST(Routing, AlreadyAdjacentNeedsNoSwaps) {
  cc::Circuit c(3);
  c.cx(0, 1).cx(1, 2);
  const auto routed =
      ct::route(c, ct::line(3), ct::trivial_layout(3, ct::line(3)));
  EXPECT_EQ(routed.swaps_inserted, 0);
  EXPECT_EQ(routed.physical.count_kind(GateKind::CX), 2u);
}

TEST(Routing, InsertsSwapsForDistantPairs) {
  cc::Circuit c(4);
  c.cx(0, 3);
  const auto routed =
      ct::route(c, ct::line(4), ct::trivial_layout(4, ct::line(4)));
  EXPECT_GE(routed.swaps_inserted, 2);
  // All CX legal.
  const ct::Topology topo = ct::line(4);
  const cc::Circuit basis = ct::decompose_to_basis(routed.physical);
  for (const cc::Gate& g : basis.ops())
    if (g.kind == GateKind::CX)
      EXPECT_TRUE(topo.connected(g.qubits[0], g.qubits[1]));
}

TEST(Routing, RemapDistributionInvertsPermutation) {
  // Physical distribution peaked at physical qubit 2 = logical 0.
  std::vector<double> phys(8, 0.0);
  phys[4] = 1.0;  // |q2=1, q1=0, q0=0>
  const ct::Layout final_layout = {2, 0};  // logical0 -> phys2, logical1 -> phys0
  const auto logical = ct::remap_distribution(phys, final_layout, 2);
  ASSERT_EQ(logical.size(), 4u);
  EXPECT_DOUBLE_EQ(logical[1], 1.0);  // logical0 = 1, logical1 = 0
}

TEST(Routing, SemanticsPreservedThroughRouting) {
  charter::util::Rng rng(17);
  const ct::Topology topo = ct::ibm_lagos();
  for (int trial = 0; trial < 4; ++trial) {
    const cc::Circuit logical = random_logical_circuit(5, 20, rng);
    const cc::Circuit basis = ct::decompose_to_basis(logical);
    const auto routed = ct::route(basis, topo, ct::trivial_layout(5, topo));
    const cc::Circuit phys = ct::decompose_to_basis(routed.physical);

    const auto want = cs::ideal_probabilities(logical);
    const auto got_phys = cs::ideal_probabilities(phys);
    const auto got = ct::remap_distribution(got_phys, routed.final, 5);
    EXPECT_LT(dist(want, got), 1e-9) << "trial " << trial;
  }
}

// ---- full pipeline ----

TEST(Transpiler, EndToEndPreservesSemantics) {
  charter::util::Rng rng(19);
  const ct::Topology topo = ct::ibm_lagos();
  const charter::noise::NoiseModel model =
      charter::noise::generate_calibration(7, topo.edges(), 3);
  for (int level : {0, 3}) {
    const cc::Circuit logical = random_logical_circuit(4, 25, rng);
    ct::TranspileOptions opts;
    opts.optimization_level = level;
    const ct::TranspileResult result =
        ct::transpile(logical, topo, &model, opts);
    const auto want = cs::ideal_probabilities(logical);
    const auto got =
        result.to_logical(cs::ideal_probabilities(result.physical), 4);
    EXPECT_LT(dist(want, got), 1e-9) << "level " << level;
  }
}

TEST(Transpiler, NoiseAwareLayoutAvoidsWorstQubits) {
  const ct::Topology topo = ct::line(5);
  charter::noise::NoiseModel model =
      charter::noise::generate_calibration(5, topo.edges(), 3);
  // Poison edge 3-4.
  model.edge(3, 4).cx_depol = 0.4;
  model.qubit(4).readout.p_meas0_given1 = 0.3;
  cc::Circuit bell(2);
  bell.h(0).cx(0, 1);
  const cc::Circuit basis = ct::decompose_to_basis(bell);
  const ct::Layout layout = ct::noise_aware_layout(basis, topo, model);
  for (const int p : layout) EXPECT_NE(p, 4);
}

TEST(Transpiler, QftOnLagosProducesReasonableGateMix) {
  const ct::Topology topo = ct::ibm_lagos();
  const charter::noise::NoiseModel model =
      charter::noise::generate_calibration(7, topo.edges(), 3);
  const cc::Circuit logical = charter::algos::qft(3, 0);
  const ct::TranspileResult result = ct::transpile(logical, topo, &model);
  const std::size_t rz = result.physical.count_kind(GateKind::RZ);
  const std::size_t cx = result.physical.count_kind(GateKind::CX);
  const std::size_t sx = result.physical.count_kind(GateKind::SX);
  EXPECT_GE(cx, 6u);   // QFT(3) has 3 CPs (2 CX each) + possible swaps
  EXPECT_GE(rz, 8u);
  EXPECT_GE(sx, 4u);
  // Everything is basis.
  for (const cc::Gate& g : result.physical.ops())
    EXPECT_TRUE(cc::is_basis_gate(g.kind) || g.kind == GateKind::BARRIER);
}

TEST(Transpiler, RejectsOversizedCircuits) {
  cc::Circuit c(8);
  c.h(0);
  const ct::Topology topo = ct::ibm_lagos();
  EXPECT_THROW(ct::transpile(c, topo, nullptr), charter::InvalidArgument);
}

// ---- commutation pass ----

TEST(Commute, RzHoistsOverCxControl) {
  cc::Circuit c(2);
  c.cx(0, 1).rz(0, 0.5).cx(0, 1);
  const cc::Circuit opt = ct::optimize(c, 3);
  // RZ commutes with the control, so the CX pair cancels.
  EXPECT_EQ(opt.count_kind(GateKind::CX), 0u);
  EXPECT_EQ(opt.count_kind(GateKind::RZ), 1u);
}

TEST(Commute, XHoistsOverCxTarget) {
  cc::Circuit c(2);
  c.cx(0, 1).x(1).cx(0, 1);
  const cc::Circuit opt = ct::optimize(c, 3);
  EXPECT_EQ(opt.count_kind(GateKind::CX), 0u);
  EXPECT_EQ(opt.count_kind(GateKind::X), 1u);
}

TEST(Commute, RzOnTargetDoesNotHoist) {
  cc::Circuit c(2);
  c.cx(0, 1).rz(1, 0.5).cx(0, 1);  // RZZ core: must NOT cancel
  const cc::Circuit opt = ct::optimize(c, 3);
  EXPECT_EQ(opt.count_kind(GateKind::CX), 2u);
}

TEST(Commute, XOnControlDoesNotHoist) {
  cc::Circuit c(2);
  c.cx(0, 1).x(0).cx(0, 1);
  const cc::Circuit opt = ct::optimize(c, 3);
  EXPECT_EQ(opt.count_kind(GateKind::CX), 2u);
}

TEST(Commute, PreservesSemanticsOnRandomCircuits) {
  charter::util::Rng rng(23);
  for (int trial = 0; trial < 6; ++trial) {
    const cc::Circuit logical = random_logical_circuit(4, 30, rng);
    const cc::Circuit basis = ct::decompose_to_basis(logical);
    const cc::Circuit pushed = ct::commute_push_left(basis);
    EXPECT_EQ(pushed.size(), basis.size());  // reorder only
    cs::Statevector a(4), b(4);
    cc::Circuit pre(4);
    for (int q = 0; q < 4; ++q) pre.h(q).rz(q, rng.uniform(-1.0, 1.0));
    a.apply(pre);
    b.apply(pre);
    a.apply(basis);
    b.apply(pushed);
    EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, 1e-8) << trial;
  }
}

TEST(Commute, DoesNotCrossBarriers) {
  cc::Circuit c(2);
  c.cx(0, 1).barrier().rz(0, 0.5).cx(0, 1);
  const cc::Circuit opt = ct::optimize(c, 3);
  EXPECT_EQ(opt.count_kind(GateKind::CX), 2u);
}

// ---- gate-kind parsing (cache round trip support) ----

TEST(GateNames, RoundTripAllKinds) {
  for (GateKind k :
       {GateKind::RZ, GateKind::SX, GateKind::SXDG, GateKind::X, GateKind::CX,
        GateKind::H, GateKind::CCX, GateKind::BARRIER, GateKind::RZZ}) {
    EXPECT_EQ(cc::gate_kind_from_name(cc::gate_name(k)), k);
  }
  EXPECT_THROW(cc::gate_kind_from_name("bogus"), charter::NotFound);
}
