// Tests for the fake backends: compilation, compaction, logical-output
// remapping, engine selection and agreement, determinism, shot noise, and
// calibration drift.

#include <gtest/gtest.h>

#include <cmath>

#include "algos/algorithms.hpp"
#include "backend/backend.hpp"
#include "stats/stats.hpp"
#include "util/error.hpp"

namespace ca = charter::algos;
namespace cb = charter::backend;
namespace cc = charter::circ;
namespace cn = charter::noise;
namespace ct = charter::transpile;
using cc::GateKind;

namespace {

/// Silences every noise mechanism on a backend.
void quiet(cn::NoiseModel& m) {
  m.toggles() = cn::NoiseToggles{};
  m.toggles().decoherence = false;
  m.toggles().depolarizing = false;
  m.toggles().coherent = false;
  m.toggles().static_zz = false;
  m.toggles().drive_zz = false;
  m.toggles().readout = false;
  m.toggles().prep = false;
}

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

}  // namespace

TEST(Backend, DeviceConstruction) {
  const cb::FakeBackend lagos = cb::FakeBackend::lagos();
  EXPECT_EQ(lagos.topology().num_qubits(), 7);
  EXPECT_EQ(lagos.name(), "ibm_lagos");
  const cb::FakeBackend guadalupe = cb::FakeBackend::guadalupe();
  EXPECT_EQ(guadalupe.topology().num_qubits(), 16);
}

TEST(Backend, CalibrationIsSeededPerDevice) {
  const cb::FakeBackend a = cb::FakeBackend::lagos(5);
  const cb::FakeBackend b = cb::FakeBackend::lagos(5);
  const cb::FakeBackend c = cb::FakeBackend::lagos(6);
  EXPECT_DOUBLE_EQ(a.model().qubit(3).t1_ns, b.model().qubit(3).t1_ns);
  EXPECT_NE(a.model().qubit(3).t1_ns, c.model().qubit(3).t1_ns);
}

TEST(Backend, CompileProducesLegalProgram) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 5));
  EXPECT_EQ(prog.num_logical, 3);
  EXPECT_EQ(prog.physical.num_qubits(), 7);
  ASSERT_EQ(prog.final_layout.size(), 3u);
  for (const cc::Gate& g : prog.physical.ops()) {
    EXPECT_TRUE(cc::is_basis_gate(g.kind) || g.kind == GateKind::BARRIER);
    if (g.kind == GateKind::CX)
      EXPECT_TRUE(backend.topology().connected(g.qubits[0], g.qubits[1]));
  }
}

TEST(Backend, IdealOutputSurvivesCompilation) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  for (const std::uint64_t k : {0ULL, 3ULL, 6ULL}) {
    const cb::CompiledProgram prog = backend.compile(ca::qft(3, k));
    const auto ideal = backend.ideal(prog);
    EXPECT_NEAR(ideal[k], 1.0, 1e-9) << "k=" << k;
  }
}

TEST(Backend, QuietBackendMatchesIdeal) {
  cb::FakeBackend backend = cb::FakeBackend::lagos();
  quiet(backend.model());
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 2));
  cb::RunOptions opts;
  opts.shots = 0;  // exact distribution
  const auto noisy = backend.run(prog, opts);
  const auto ideal = backend.ideal(prog);
  EXPECT_LT(charter::stats::tvd(noisy, ideal), 1e-9);
}

TEST(Backend, NoisyOutputIsAValidDistribution) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 0));
  cb::RunOptions opts;
  opts.shots = 0;
  const auto probs = backend.run(prog, opts);
  ASSERT_EQ(probs.size(), 8u);
  EXPECT_NEAR(sum(probs), 1.0, 1e-9);
  for (const double p : probs) EXPECT_GE(p, -1e-12);
}

TEST(Backend, NoiseDegradesTheDeltaOutput) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 0));
  cb::RunOptions opts;
  opts.shots = 0;
  const auto noisy = backend.run(prog, opts);
  const auto ideal = backend.ideal(prog);
  const double err = charter::stats::tvd(noisy, ideal);
  EXPECT_GT(err, 0.02);  // visible error
  EXPECT_LT(err, 0.75);  // but far from garbage
}

TEST(Backend, RunsAreDeterministicInSeed) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 1));
  cb::RunOptions opts;
  opts.shots = 2048;
  opts.seed = 99;
  const auto a = backend.run(prog, opts);
  const auto b = backend.run(prog, opts);
  EXPECT_EQ(a, b);
  opts.seed = 100;
  const auto c = backend.run(prog, opts);
  EXPECT_NE(a, c);
}

TEST(Backend, ShotNoiseShrinksWithShots) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 1));
  cb::RunOptions exact;
  exact.shots = 0;
  const auto truth = backend.run(prog, exact);

  double err_small = 0.0, err_large = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    cb::RunOptions small;
    small.shots = 128;
    small.seed = 1000 + s;
    err_small += charter::stats::tvd(backend.run(prog, small), truth);
    cb::RunOptions large;
    large.shots = 32000;
    large.seed = 2000 + s;
    err_large += charter::stats::tvd(backend.run(prog, large), truth);
  }
  EXPECT_GT(err_small, 2.0 * err_large);
}

TEST(Backend, DriftPerturbsRuns) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 1));
  cb::RunOptions a;
  a.shots = 0;
  a.drift = 0.05;
  a.seed = 7;
  cb::RunOptions b = a;
  b.seed = 8;
  const auto pa = backend.run(prog, a);
  const auto pb = backend.run(prog, b);
  const double d = charter::stats::tvd(pa, pb);
  EXPECT_GT(d, 1e-5);
  EXPECT_LT(d, 0.2);
}

TEST(Backend, EnginesAgreeOnSmallPrograms) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 3));
  cb::RunOptions dm;
  dm.shots = 0;
  dm.engine = cb::EngineKind::kDensityMatrix;
  cb::RunOptions mc;
  mc.shots = 0;
  mc.engine = cb::EngineKind::kTrajectory;
  mc.trajectories = 3000;
  mc.seed = 5;
  const auto p_dm = backend.run(prog, dm);
  const auto p_mc = backend.run(prog, mc);
  EXPECT_LT(charter::stats::tvd(p_dm, p_mc), 0.03);
}

TEST(Backend, CompactionKeepsWideDeviceFeasible) {
  // A 3-qubit program on the 16-qubit guadalupe must run on the DM engine
  // (16 qubits would need a 4^16 density matrix).
  const cb::FakeBackend backend = cb::FakeBackend::guadalupe();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 4));
  cb::RunOptions opts;
  opts.shots = 0;
  opts.engine = cb::EngineKind::kDensityMatrix;
  const auto probs = backend.run(prog, opts);
  EXPECT_EQ(probs.size(), 8u);
  EXPECT_NEAR(sum(probs), 1.0, 1e-9);
}

TEST(Backend, RestrictModelRelabelsEdges) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  // Keep qubits {1, 3, 5} (a path in lagos: 1-3, 3-5).
  const cn::NoiseModel sub = cb::restrict_model(backend.model(), {1, 3, 5});
  EXPECT_EQ(sub.num_qubits(), 3);
  EXPECT_TRUE(sub.has_edge(0, 1));   // 1-3
  EXPECT_TRUE(sub.has_edge(1, 2));   // 3-5
  EXPECT_FALSE(sub.has_edge(0, 2));  // 1-5 not coupled
  EXPECT_DOUBLE_EQ(sub.qubit(1).t1_ns, backend.model().qubit(3).t1_ns);
  EXPECT_DOUBLE_EQ(sub.edge(0, 1).cx_depol,
                   backend.model().edge(1, 3).cx_depol);
}

TEST(Backend, DurationGrowsWithCircuitLength) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram small = backend.compile(ca::tfim(4, 2));
  const cb::CompiledProgram large = backend.compile(ca::tfim(4, 8));
  EXPECT_GT(backend.duration_ns(large), backend.duration_ns(small));
  EXPECT_GT(backend.duration_ns(small), 100.0);
}

TEST(Backend, RejectsForeignPrograms) {
  const cb::FakeBackend lagos = cb::FakeBackend::lagos();
  const cb::FakeBackend guadalupe = cb::FakeBackend::guadalupe();
  const cb::CompiledProgram prog = lagos.compile(ca::qft(3, 0));
  EXPECT_THROW(guadalupe.run(prog, {}), charter::InvalidArgument);
}

TEST(Backend, ReadoutConfusionKnobValidates) {
  cb::FakeBackend backend = cb::FakeBackend::lagos();
  EXPECT_THROW(backend.set_readout_confusion(-0.1, 0.0),
               charter::InvalidArgument);
  EXPECT_THROW(backend.set_readout_confusion(0.0, 1.0),
               charter::InvalidArgument);
  EXPECT_THROW(backend.set_readout_confusion(99, 0.01, 0.01),
               charter::InvalidArgument);
  backend.set_readout_confusion(0.02, 0.05);  // valid: takes effect
  EXPECT_TRUE(backend.model().toggles().readout);
  EXPECT_DOUBLE_EQ(backend.model().qubit(0).readout.p_meas1_given0, 0.02);
  EXPECT_DOUBLE_EQ(backend.model().qubit(0).readout.p_meas0_given1, 0.05);
}

TEST(Backend, ReadoutConfusionChangesTheOutput) {
  cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 3));
  cb::RunOptions opts;
  opts.shots = 0;
  const auto before = backend.run(prog, opts);
  backend.set_readout_confusion(0.04, 0.08);
  const auto after = backend.run(prog, opts);
  EXPECT_GT(charter::stats::tvd(before, after), 1e-3);
}

// The knob is applied in finalize(), after the engine produced its raw
// distribution — so the density-matrix and trajectory engines must honor
// it identically.  With only deterministic (unitary) noise mechanisms
// left on, every trajectory is the same pure-state evolution and the two
// engines agree to numerical precision, isolating the confusion matrix as
// the only post-processing under test.
TEST(Backend, ReadoutConfusionIsEngineIndependent) {
  cb::FakeBackend backend = cb::FakeBackend::lagos();
  cn::NoiseToggles& toggles = backend.model().toggles();
  toggles.decoherence = false;
  toggles.depolarizing = false;
  toggles.prep = false;
  backend.set_readout_confusion(0, 0.02, 0.05);
  backend.set_readout_confusion(1, 0.01, 0.03);
  backend.set_readout_confusion(2, 0.04, 0.00);

  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 3));
  cb::RunOptions dm;
  dm.shots = 0;
  dm.engine = cb::EngineKind::kDensityMatrix;
  cb::RunOptions mc = dm;
  mc.engine = cb::EngineKind::kTrajectory;
  mc.trajectories = 4;
  const auto p_dm = backend.run(prog, dm);
  const auto p_mc = backend.run(prog, mc);
  ASSERT_EQ(p_dm.size(), p_mc.size());
  for (std::size_t i = 0; i < p_dm.size(); ++i)
    EXPECT_NEAR(p_dm[i], p_mc[i], 1e-12) << "outcome " << i;
}

// With every other mechanism off, the confusion matrix is the entire
// channel and the output marginals are analytic.
TEST(Backend, ReadoutConfusionMatchesAnalyticMarginals) {
  const ct::Topology topo = ct::line(2);
  cn::NoiseModel model = cn::generate_calibration(2, topo.edges(), 3);
  cn::NoiseToggles& toggles = model.toggles();
  toggles.decoherence = false;
  toggles.depolarizing = false;
  toggles.coherent = false;
  toggles.static_zz = false;
  toggles.drive_zz = false;
  toggles.prep = false;
  cb::FakeBackend backend(topo, model);
  backend.set_readout_confusion(0.07, 0.11);

  cc::Circuit idle(1);
  idle.id(0);
  cb::RunOptions opts;
  opts.shots = 0;
  const auto p0 = backend.run(backend.compile(idle), opts);
  ASSERT_EQ(p0.size(), 2u);
  EXPECT_NEAR(p0[1], 0.07, 1e-12);  // p(read 1 | prepared 0)

  cc::Circuit flip(1);
  flip.x(0);
  const auto p1 = backend.run(backend.compile(flip), opts);
  ASSERT_EQ(p1.size(), 2u);
  EXPECT_NEAR(p1[0], 0.11, 1e-12);  // p(read 0 | |1>), X is noiseless here
}
