// Tests for the fake backends: compilation, compaction, logical-output
// remapping, engine selection and agreement, determinism, shot noise, and
// calibration drift.

#include <gtest/gtest.h>

#include <cmath>

#include "algos/algorithms.hpp"
#include "backend/backend.hpp"
#include "stats/stats.hpp"
#include "util/error.hpp"

namespace ca = charter::algos;
namespace cb = charter::backend;
namespace cc = charter::circ;
namespace cn = charter::noise;
namespace ct = charter::transpile;
using cc::GateKind;

namespace {

/// Silences every noise mechanism on a backend.
void quiet(cn::NoiseModel& m) {
  m.toggles() = cn::NoiseToggles{};
  m.toggles().decoherence = false;
  m.toggles().depolarizing = false;
  m.toggles().coherent = false;
  m.toggles().static_zz = false;
  m.toggles().drive_zz = false;
  m.toggles().readout = false;
  m.toggles().prep = false;
}

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

}  // namespace

TEST(Backend, DeviceConstruction) {
  const cb::FakeBackend lagos = cb::FakeBackend::lagos();
  EXPECT_EQ(lagos.topology().num_qubits(), 7);
  EXPECT_EQ(lagos.name(), "ibm_lagos");
  const cb::FakeBackend guadalupe = cb::FakeBackend::guadalupe();
  EXPECT_EQ(guadalupe.topology().num_qubits(), 16);
}

TEST(Backend, CalibrationIsSeededPerDevice) {
  const cb::FakeBackend a = cb::FakeBackend::lagos(5);
  const cb::FakeBackend b = cb::FakeBackend::lagos(5);
  const cb::FakeBackend c = cb::FakeBackend::lagos(6);
  EXPECT_DOUBLE_EQ(a.model().qubit(3).t1_ns, b.model().qubit(3).t1_ns);
  EXPECT_NE(a.model().qubit(3).t1_ns, c.model().qubit(3).t1_ns);
}

TEST(Backend, CompileProducesLegalProgram) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 5));
  EXPECT_EQ(prog.num_logical, 3);
  EXPECT_EQ(prog.physical.num_qubits(), 7);
  ASSERT_EQ(prog.final_layout.size(), 3u);
  for (const cc::Gate& g : prog.physical.ops()) {
    EXPECT_TRUE(cc::is_basis_gate(g.kind) || g.kind == GateKind::BARRIER);
    if (g.kind == GateKind::CX)
      EXPECT_TRUE(backend.topology().connected(g.qubits[0], g.qubits[1]));
  }
}

TEST(Backend, IdealOutputSurvivesCompilation) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  for (const std::uint64_t k : {0ULL, 3ULL, 6ULL}) {
    const cb::CompiledProgram prog = backend.compile(ca::qft(3, k));
    const auto ideal = backend.ideal(prog);
    EXPECT_NEAR(ideal[k], 1.0, 1e-9) << "k=" << k;
  }
}

TEST(Backend, QuietBackendMatchesIdeal) {
  cb::FakeBackend backend = cb::FakeBackend::lagos();
  quiet(backend.model());
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 2));
  cb::RunOptions opts;
  opts.shots = 0;  // exact distribution
  const auto noisy = backend.run(prog, opts);
  const auto ideal = backend.ideal(prog);
  EXPECT_LT(charter::stats::tvd(noisy, ideal), 1e-9);
}

TEST(Backend, NoisyOutputIsAValidDistribution) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 0));
  cb::RunOptions opts;
  opts.shots = 0;
  const auto probs = backend.run(prog, opts);
  ASSERT_EQ(probs.size(), 8u);
  EXPECT_NEAR(sum(probs), 1.0, 1e-9);
  for (const double p : probs) EXPECT_GE(p, -1e-12);
}

TEST(Backend, NoiseDegradesTheDeltaOutput) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 0));
  cb::RunOptions opts;
  opts.shots = 0;
  const auto noisy = backend.run(prog, opts);
  const auto ideal = backend.ideal(prog);
  const double err = charter::stats::tvd(noisy, ideal);
  EXPECT_GT(err, 0.02);  // visible error
  EXPECT_LT(err, 0.75);  // but far from garbage
}

TEST(Backend, RunsAreDeterministicInSeed) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 1));
  cb::RunOptions opts;
  opts.shots = 2048;
  opts.seed = 99;
  const auto a = backend.run(prog, opts);
  const auto b = backend.run(prog, opts);
  EXPECT_EQ(a, b);
  opts.seed = 100;
  const auto c = backend.run(prog, opts);
  EXPECT_NE(a, c);
}

TEST(Backend, ShotNoiseShrinksWithShots) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 1));
  cb::RunOptions exact;
  exact.shots = 0;
  const auto truth = backend.run(prog, exact);

  double err_small = 0.0, err_large = 0.0;
  for (std::uint64_t s = 0; s < 5; ++s) {
    cb::RunOptions small;
    small.shots = 128;
    small.seed = 1000 + s;
    err_small += charter::stats::tvd(backend.run(prog, small), truth);
    cb::RunOptions large;
    large.shots = 32000;
    large.seed = 2000 + s;
    err_large += charter::stats::tvd(backend.run(prog, large), truth);
  }
  EXPECT_GT(err_small, 2.0 * err_large);
}

TEST(Backend, DriftPerturbsRuns) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 1));
  cb::RunOptions a;
  a.shots = 0;
  a.drift = 0.05;
  a.seed = 7;
  cb::RunOptions b = a;
  b.seed = 8;
  const auto pa = backend.run(prog, a);
  const auto pb = backend.run(prog, b);
  const double d = charter::stats::tvd(pa, pb);
  EXPECT_GT(d, 1e-5);
  EXPECT_LT(d, 0.2);
}

TEST(Backend, EnginesAgreeOnSmallPrograms) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 3));
  cb::RunOptions dm;
  dm.shots = 0;
  dm.engine = cb::EngineKind::kDensityMatrix;
  cb::RunOptions mc;
  mc.shots = 0;
  mc.engine = cb::EngineKind::kTrajectory;
  mc.trajectories = 3000;
  mc.seed = 5;
  const auto p_dm = backend.run(prog, dm);
  const auto p_mc = backend.run(prog, mc);
  EXPECT_LT(charter::stats::tvd(p_dm, p_mc), 0.03);
}

TEST(Backend, CompactionKeepsWideDeviceFeasible) {
  // A 3-qubit program on the 16-qubit guadalupe must run on the DM engine
  // (16 qubits would need a 4^16 density matrix).
  const cb::FakeBackend backend = cb::FakeBackend::guadalupe();
  const cb::CompiledProgram prog = backend.compile(ca::qft(3, 4));
  cb::RunOptions opts;
  opts.shots = 0;
  opts.engine = cb::EngineKind::kDensityMatrix;
  const auto probs = backend.run(prog, opts);
  EXPECT_EQ(probs.size(), 8u);
  EXPECT_NEAR(sum(probs), 1.0, 1e-9);
}

TEST(Backend, RestrictModelRelabelsEdges) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  // Keep qubits {1, 3, 5} (a path in lagos: 1-3, 3-5).
  const cn::NoiseModel sub = cb::restrict_model(backend.model(), {1, 3, 5});
  EXPECT_EQ(sub.num_qubits(), 3);
  EXPECT_TRUE(sub.has_edge(0, 1));   // 1-3
  EXPECT_TRUE(sub.has_edge(1, 2));   // 3-5
  EXPECT_FALSE(sub.has_edge(0, 2));  // 1-5 not coupled
  EXPECT_DOUBLE_EQ(sub.qubit(1).t1_ns, backend.model().qubit(3).t1_ns);
  EXPECT_DOUBLE_EQ(sub.edge(0, 1).cx_depol,
                   backend.model().edge(1, 3).cx_depol);
}

TEST(Backend, DurationGrowsWithCircuitLength) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram small = backend.compile(ca::tfim(4, 2));
  const cb::CompiledProgram large = backend.compile(ca::tfim(4, 8));
  EXPECT_GT(backend.duration_ns(large), backend.duration_ns(small));
  EXPECT_GT(backend.duration_ns(small), 100.0);
}

TEST(Backend, RejectsForeignPrograms) {
  const cb::FakeBackend lagos = cb::FakeBackend::lagos();
  const cb::FakeBackend guadalupe = cb::FakeBackend::guadalupe();
  const cb::CompiledProgram prog = lagos.compile(ca::qft(3, 0));
  EXPECT_THROW(guadalupe.run(prog, {}), charter::InvalidArgument);
}
