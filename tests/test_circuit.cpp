// Unit and property tests for the circuit IR: gate metadata, unitaries,
// inverses, the builder, layering, scheduling, and printing.

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <string>

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "circuit/print.hpp"
#include "circuit/schedule.hpp"
#include "math/matrix.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace cc = charter::circ;
namespace cm = charter::math;
using cc::Gate;
using cc::GateKind;

namespace {

const GateKind kOneQubitKinds[] = {
    GateKind::RZ, GateKind::SX, GateKind::SXDG, GateKind::X,  GateKind::ID,
    GateKind::H,  GateKind::S,  GateKind::SDG,  GateKind::T,  GateKind::TDG,
    GateKind::RX, GateKind::RY, GateKind::U3};

const GateKind kTwoQubitKinds[] = {GateKind::CX,   GateKind::CZ,
                                   GateKind::CP,   GateKind::CRZ,
                                   GateKind::SWAP, GateKind::RZZ,
                                   GateKind::RXX,  GateKind::RYY};

Gate sample_gate(GateKind kind, charter::util::Rng& rng) {
  const int np = cc::gate_param_count(kind);
  if (cc::gate_arity(kind) == 1) {
    if (np == 0) return cc::make_gate(kind, {0});
    if (np == 1) return cc::make_gate(kind, {0}, {rng.uniform(-M_PI, M_PI)});
    return cc::make_gate(kind, {0},
                         {rng.uniform(-M_PI, M_PI), rng.uniform(-M_PI, M_PI),
                          rng.uniform(-M_PI, M_PI)});
  }
  if (np == 0) return cc::make_gate(kind, {0, 1});
  return cc::make_gate(kind, {0, 1}, {rng.uniform(-M_PI, M_PI)});
}

}  // namespace

// ---- gate metadata ----

TEST(GateMeta, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> names;
  for (GateKind k : kOneQubitKinds) names.insert(cc::gate_name(k));
  for (GateKind k : kTwoQubitKinds) names.insert(cc::gate_name(k));
  names.insert(cc::gate_name(GateKind::CCX));
  names.insert(cc::gate_name(GateKind::BARRIER));
  EXPECT_EQ(names.size(), std::size(kOneQubitKinds) +
                              std::size(kTwoQubitKinds) + 2);
}

TEST(GateMeta, ArityAndParams) {
  EXPECT_EQ(cc::gate_arity(GateKind::CX), 2);
  EXPECT_EQ(cc::gate_arity(GateKind::CCX), 3);
  EXPECT_EQ(cc::gate_arity(GateKind::BARRIER), 0);
  EXPECT_EQ(cc::gate_param_count(GateKind::U3), 3);
  EXPECT_EQ(cc::gate_param_count(GateKind::RZ), 1);
  EXPECT_EQ(cc::gate_param_count(GateKind::SX), 0);
}

TEST(GateMeta, BasisAndVirtualClassification) {
  EXPECT_TRUE(cc::is_basis_gate(GateKind::RZ));
  EXPECT_TRUE(cc::is_basis_gate(GateKind::SXDG));
  EXPECT_FALSE(cc::is_basis_gate(GateKind::H));
  EXPECT_TRUE(cc::is_virtual(GateKind::RZ));
  EXPECT_TRUE(cc::is_virtual(GateKind::BARRIER));
  EXPECT_FALSE(cc::is_virtual(GateKind::SX));
  EXPECT_TRUE(cc::is_one_qubit_physical(GateKind::SX));
  EXPECT_FALSE(cc::is_one_qubit_physical(GateKind::RZ));
  EXPECT_FALSE(cc::is_one_qubit_physical(GateKind::CX));
}

TEST(GateMeta, MakeGateValidatesArity) {
  EXPECT_THROW(cc::make_gate(GateKind::CX, {0}), charter::InvalidArgument);
  EXPECT_THROW(cc::make_gate(GateKind::RZ, {0}), charter::InvalidArgument);
  EXPECT_THROW(cc::make_gate(GateKind::CX, {1, 1}),
               charter::InvalidArgument);
}

// ---- unitaries ----

TEST(GateUnitary, AllOneQubitGatesAreUnitary) {
  charter::util::Rng rng(5);
  for (GateKind k : kOneQubitKinds) {
    const Gate g = sample_gate(k, rng);
    EXPECT_TRUE(cm::is_unitary(cc::gate_unitary_1q(g)))
        << cc::gate_name(k);
  }
}

TEST(GateUnitary, AllTwoQubitGatesAreUnitary) {
  charter::util::Rng rng(6);
  for (GateKind k : kTwoQubitKinds) {
    const Gate g = sample_gate(k, rng);
    EXPECT_TRUE(cm::is_unitary(cc::gate_unitary_2q(g)))
        << cc::gate_name(k);
  }
}

TEST(GateUnitary, SxSquaredIsX) {
  const auto sx = cc::gate_unitary_1q(cc::make_gate(GateKind::SX, {0}));
  const auto x = cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0}));
  EXPECT_TRUE(cm::equal_up_to_phase(cm::mul(sx, sx), x));
}

TEST(GateUnitary, SxdgIsAdjointOfSx) {
  const auto sx = cc::gate_unitary_1q(cc::make_gate(GateKind::SX, {0}));
  const auto sxdg = cc::gate_unitary_1q(cc::make_gate(GateKind::SXDG, {0}));
  EXPECT_NEAR(cm::max_abs_diff(sxdg, cm::adjoint(sx)), 0.0, 1e-15);
}

TEST(GateUnitary, HadamardEqualsU3Form) {
  // H = U3(pi/2, 0, pi) up to phase.
  const auto h = cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0}));
  const auto u = cc::gate_unitary_1q(
      cc::make_gate(GateKind::U3, {0}, {M_PI_2, 0.0, M_PI}));
  EXPECT_TRUE(cm::equal_up_to_phase(u, h));
}

TEST(GateUnitary, RzIsDiagonalPhase) {
  const auto rz = cc::gate_unitary_1q(
      cc::make_gate(GateKind::RZ, {0}, {M_PI_2}));
  EXPECT_NEAR(std::abs(rz(0, 1)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(rz(1, 0)), 0.0, 1e-15);
  EXPECT_NEAR(std::arg(rz(1, 1) / rz(0, 0)), M_PI_2, 1e-12);
}

TEST(GateUnitary, CxMapsBasisStatesCorrectly) {
  // Convention: idx = bit(control) + 2*bit(target).
  const auto cx = cc::gate_unitary_2q(cc::make_gate(GateKind::CX, {0, 1}));
  // |control=1,target=0> (idx 1) -> |control=1,target=1> (idx 3).
  EXPECT_NEAR(std::abs(cx(3, 1) - cm::cplx(1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(cx(1, 3) - cm::cplx(1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(cx(0, 0) - cm::cplx(1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(cx(2, 2) - cm::cplx(1.0)), 0.0, 1e-15);
}

TEST(GateUnitary, SwapExchanges) {
  const auto sw = cc::gate_unitary_2q(cc::make_gate(GateKind::SWAP, {0, 1}));
  EXPECT_NEAR(std::abs(sw(2, 1) - cm::cplx(1.0)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(sw(1, 2) - cm::cplx(1.0)), 0.0, 1e-15);
}

TEST(GateUnitary, RzzDiagonalSigns) {
  const auto rzz = cc::gate_unitary_2q(
      cc::make_gate(GateKind::RZZ, {0, 1}, {M_PI_2}));
  // Same-parity states get e^{-i pi/4}; opposite parity e^{+i pi/4}.
  EXPECT_NEAR(std::arg(rzz(0, 0)), -M_PI_2 / 2.0, 1e-12);
  EXPECT_NEAR(std::arg(rzz(1, 1)), M_PI_2 / 2.0, 1e-12);
  EXPECT_NEAR(std::arg(rzz(3, 3)), -M_PI_2 / 2.0, 1e-12);
}

// ---- inverses (property: U * inverse(U) == I up to phase) ----

class GateInverseOneQubit : public ::testing::TestWithParam<GateKind> {};

TEST_P(GateInverseOneQubit, ProductIsIdentity) {
  charter::util::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const Gate g = sample_gate(GetParam(), rng);
    const Gate gi = cc::inverse_gate(g);
    const auto prod =
        cm::mul(cc::gate_unitary_1q(gi), cc::gate_unitary_1q(g));
    EXPECT_TRUE(cm::equal_up_to_phase(prod, cm::Mat2::identity()))
        << cc::gate_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllOneQubit, GateInverseOneQubit,
                         ::testing::ValuesIn(kOneQubitKinds),
                         [](const auto& info) {
                           return cc::gate_name(info.param);
                         });

class GateInverseTwoQubit : public ::testing::TestWithParam<GateKind> {};

TEST_P(GateInverseTwoQubit, ProductIsIdentity) {
  charter::util::Rng rng(8);
  for (int trial = 0; trial < 10; ++trial) {
    const Gate g = sample_gate(GetParam(), rng);
    const Gate gi = cc::inverse_gate(g);
    const auto prod =
        cm::mul(cc::gate_unitary_2q(gi), cc::gate_unitary_2q(g));
    EXPECT_TRUE(cm::equal_up_to_phase(prod, cm::Mat4::identity()))
        << cc::gate_name(GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwoQubit, GateInverseTwoQubit,
                         ::testing::ValuesIn(kTwoQubitKinds),
                         [](const auto& info) {
                           return cc::gate_name(info.param);
                         });

// ---- circuit container ----

TEST(Circuit, BuilderAppendsInOrder) {
  cc::Circuit c(3);
  c.h(0).cx(0, 1).rz(2, 0.5).barrier().x(2);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c.op(0).kind, GateKind::H);
  EXPECT_EQ(c.op(1).kind, GateKind::CX);
  EXPECT_EQ(c.op(3).kind, GateKind::BARRIER);
  EXPECT_EQ(c.op(4).qubits[0], 2);
}

TEST(Circuit, RejectsOutOfRangeOperand) {
  cc::Circuit c(2);
  EXPECT_THROW(c.x(2), charter::InvalidArgument);
  EXPECT_THROW(c.cx(0, 5), charter::InvalidArgument);
}

TEST(Circuit, AppendCircuitRequiresSameWidth) {
  cc::Circuit a(2), b(3);
  EXPECT_THROW(a.append(b), charter::InvalidArgument);
}

TEST(Circuit, InverseReversesAndInverts) {
  cc::Circuit c(2);
  c.sx(0).rz(1, 0.7).cx(0, 1);
  const cc::Circuit inv = c.inverse();
  ASSERT_EQ(inv.size(), 3u);
  EXPECT_EQ(inv.op(0).kind, GateKind::CX);
  EXPECT_EQ(inv.op(1).kind, GateKind::RZ);
  EXPECT_DOUBLE_EQ(inv.op(1).params[0], -0.7);
  EXPECT_EQ(inv.op(2).kind, GateKind::SXDG);
}

TEST(Circuit, SliceAndCounts) {
  cc::Circuit c(2);
  c.rz(0, 1.0).rz(1, 2.0).sx(0).cx(0, 1).x(1);
  EXPECT_EQ(c.count_kind(GateKind::RZ), 2u);
  EXPECT_EQ(c.count_kind(GateKind::CX), 1u);
  const cc::Circuit mid = c.slice(1, 4);
  ASSERT_EQ(mid.size(), 3u);
  EXPECT_EQ(mid.op(0).kind, GateKind::RZ);
  EXPECT_EQ(mid.op(2).kind, GateKind::CX);
}

TEST(Circuit, FlagsMarkRegions) {
  cc::Circuit c(2);
  c.x(0).x(1).h(0);
  c.add_flags(0, 2, cc::kFlagInputPrep);
  const auto tagged = c.ops_with_flag(cc::kFlagInputPrep);
  ASSERT_EQ(tagged.size(), 2u);
  EXPECT_EQ(tagged[0], 0u);
  EXPECT_EQ(tagged[1], 1u);
  EXPECT_FALSE(c.op(2).has_flag(cc::kFlagInputPrep));
}

// ---- layering ----

TEST(Layering, ParallelGatesShareLayer) {
  cc::Circuit c(3);
  c.sx(0).sx(1).sx(2);  // all independent
  const auto lay = cc::assign_layers(c);
  EXPECT_EQ(lay.num_layers, 1);
  EXPECT_EQ(lay.layer[0], 0);
  EXPECT_EQ(lay.layer[2], 0);
}

TEST(Layering, DependentGatesStack) {
  cc::Circuit c(2);
  c.sx(0).sx(0).cx(0, 1).sx(1);
  const auto lay = cc::assign_layers(c);
  EXPECT_EQ(lay.layer[0], 0);
  EXPECT_EQ(lay.layer[1], 1);
  EXPECT_EQ(lay.layer[2], 2);
  EXPECT_EQ(lay.layer[3], 3);
  EXPECT_EQ(lay.num_layers, 4);
}

TEST(Layering, BarrierSynchronizes) {
  cc::Circuit c(2);
  c.sx(0).barrier().sx(1);
  const auto lay = cc::assign_layers(c);
  // Without the barrier sx(1) would be at layer 0; the barrier pushes it to 1.
  EXPECT_EQ(lay.layer[2], 1);
  EXPECT_EQ(lay.num_layers, 2);
}

TEST(Layering, DepthMatchesPaperConvention) {
  cc::Circuit c(3);
  c.h(0).h(1).h(2).cx(0, 1).cx(1, 2);
  EXPECT_EQ(c.depth(), 3);
}

// ---- scheduling ----

TEST(Schedule, RespectsDurations) {
  cc::Circuit c(2);
  c.sx(0).cx(0, 1).rz(1, 0.3).x(1);
  cc::GateDurations dur;
  const auto sched = cc::schedule_asap(c, dur);
  EXPECT_DOUBLE_EQ(sched.ops[0].t_start, 0.0);
  EXPECT_DOUBLE_EQ(sched.ops[0].t_end, 35.0);
  EXPECT_DOUBLE_EQ(sched.ops[1].t_start, 35.0);
  EXPECT_DOUBLE_EQ(sched.ops[1].t_end, 335.0);
  // RZ takes zero time.
  EXPECT_DOUBLE_EQ(sched.ops[2].t_start, 335.0);
  EXPECT_DOUBLE_EQ(sched.ops[2].t_end, 335.0);
  EXPECT_DOUBLE_EQ(sched.ops[3].t_end, 370.0);
  EXPECT_DOUBLE_EQ(sched.total_time, 370.0);
}

TEST(Schedule, BarrierAlignsQubits) {
  cc::Circuit c(2);
  c.cx(0, 1).x(0).barrier().x(1);
  cc::GateDurations dur;
  const auto sched = cc::schedule_asap(c, dur);
  // x(1) must wait for x(0) to finish (t=335) because of the barrier.
  EXPECT_DOUBLE_EQ(sched.ops[3].t_start, 335.0);
}

TEST(Schedule, OverlapsDetected) {
  cc::Circuit c(4);
  c.cx(0, 1).cx(2, 3);  // simultaneous CXs
  cc::GateDurations dur;
  const auto sched = cc::schedule_asap(c, dur);
  ASSERT_EQ(sched.overlaps.size(), 1u);
  EXPECT_DOUBLE_EQ(sched.overlaps[0].duration, 300.0);
}

TEST(Schedule, SequentialOpsDoNotOverlap) {
  cc::Circuit c(2);
  c.x(0).x(0).cx(0, 1);
  cc::GateDurations dur;
  const auto sched = cc::schedule_asap(c, dur);
  EXPECT_TRUE(sched.overlaps.empty());
}

TEST(Schedule, ZeroDurationOpsProduceNoOverlap) {
  cc::Circuit c(2);
  c.rz(0, 0.5).cx(0, 1);
  cc::GateDurations dur;
  const auto sched = cc::schedule_asap(c, dur);
  EXPECT_TRUE(sched.overlaps.empty());
}

// ---- printing ----

TEST(Print, GateToString) {
  EXPECT_EQ(cc::gate_to_string(cc::make_gate(GateKind::CX, {1, 2})),
            "cx q1, q2");
  const std::string rz =
      cc::gate_to_string(cc::make_gate(GateKind::RZ, {0}, {M_PI_4}));
  EXPECT_NE(rz.find("rz(0.7854) q0"), std::string::npos);
}

TEST(Print, AsciiContainsAllQubits) {
  cc::Circuit c(3);
  c.h(0).cx(0, 1).rz(2, 0.5);
  const std::string art = cc::to_ascii(c);
  EXPECT_NE(art.find("q0:"), std::string::npos);
  EXPECT_NE(art.find("q2:"), std::string::npos);
  EXPECT_NE(art.find("h"), std::string::npos);
}

TEST(Print, QasmHasHeaderAndMeasure) {
  cc::Circuit c(2);
  c.h(0).cx(0, 1);
  const std::string qasm = cc::to_qasm(c);
  EXPECT_NE(qasm.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(qasm.find("qreg q[2];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0],q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("measure q -> m;"), std::string::npos);
}

TEST(GateMeta, ResetHasNoInverse) {
  const cc::Gate r = cc::make_gate(GateKind::RESET, {0});
  EXPECT_THROW(cc::inverse_gate(r), charter::InvalidArgument);
  cc::Circuit c(1);
  c.x(0).reset(0);
  EXPECT_THROW(c.inverse(), charter::InvalidArgument);
}

TEST(GateMeta, ResetIsPhysicalNonBasis) {
  EXPECT_FALSE(cc::is_basis_gate(GateKind::RESET));
  EXPECT_FALSE(cc::is_virtual(GateKind::RESET));
  EXPECT_EQ(cc::gate_arity(GateKind::RESET), 1);
  EXPECT_EQ(cc::gate_kind_from_name("reset"), GateKind::RESET);
}

// ---- OpenQASM parsing ----

#include "circuit/qasm_parser.hpp"
#include "sim/statevector.hpp"

TEST(Qasm, RoundTripsEmittedPrograms) {
  cc::Circuit c(3);
  c.h(0).cx(0, 1).rz(2, 0.7).sx(1).barrier().ccx(0, 1, 2).swap(0, 2);
  const cc::Circuit parsed = cc::parse_qasm(cc::to_qasm(c));
  ASSERT_EQ(parsed.size(), c.size());
  ASSERT_EQ(parsed.num_qubits(), 3);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_EQ(parsed.op(i).kind, c.op(i).kind) << i;
    for (int k = 0; k < c.op(i).num_qubits; ++k)
      EXPECT_EQ(parsed.op(i).qubits[k], c.op(i).qubits[k]);
    for (int k = 0; k < c.op(i).num_params; ++k)
      EXPECT_NEAR(parsed.op(i).params[k], c.op(i).params[k], 1e-9);
  }
}

TEST(Qasm, ParsePrintParseRoundTripsAllBasisGates) {
  // Fixed-point check over the full physical basis set {RZ, SX, SXDG, X, CX}
  // plus the structural ops the executor accepts: parsing an external
  // program, printing it, and re-parsing must reproduce the same circuit
  // and the same text.
  const char* src = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[3];
    creg m[3];
    rz(0.25) q[0];
    sx q[0];
    sxdg q[1];
    x q[2];
    cx q[0], q[1];
    cx q[2], q[1];
    barrier q;
    reset q[2];
    id q[1];
    measure q -> m;
  )";
  const cc::Circuit once = cc::parse_qasm(src);
  const std::string printed = cc::to_qasm(once);
  const cc::Circuit twice = cc::parse_qasm(printed);

  ASSERT_EQ(once.num_qubits(), twice.num_qubits());
  ASSERT_EQ(once.size(), twice.size());
  const GateKind expected[] = {GateKind::RZ,      GateKind::SX,
                               GateKind::SXDG,    GateKind::X,
                               GateKind::CX,      GateKind::CX,
                               GateKind::BARRIER, GateKind::RESET,
                               GateKind::ID};
  ASSERT_EQ(once.size(), std::size(expected));
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_EQ(once.op(i).kind, expected[i]) << i;
    EXPECT_EQ(twice.op(i).kind, once.op(i).kind) << i;
    EXPECT_EQ(twice.op(i).qubits, once.op(i).qubits) << i;
    for (int k = 0; k < once.op(i).num_params; ++k)
      EXPECT_DOUBLE_EQ(twice.op(i).params[k], once.op(i).params[k]) << i;
  }
  // Printing is a fixed point after one round: text out == text back in.
  EXPECT_EQ(cc::to_qasm(twice), printed);
}

TEST(Qasm, ParsesExpressionsAndAliases) {
  const char* src = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    qreg q[2];
    creg c[2];
    u1(pi/2) q[0];       // alias for rz
    u2(0, pi) q[1];      // becomes u3(pi/2, 0, pi) = H up to phase
    p(-pi/4) q[0];
    cnot q[0], q[1];
    rz(2*pi - pi/3) q[1];
    measure q -> c;
  )";
  const cc::Circuit c = cc::parse_qasm(src);
  ASSERT_EQ(c.size(), 5u);
  EXPECT_EQ(c.op(0).kind, GateKind::RZ);
  EXPECT_NEAR(c.op(0).params[0], M_PI_2, 1e-12);
  EXPECT_EQ(c.op(1).kind, GateKind::U3);
  EXPECT_NEAR(c.op(1).params[0], M_PI_2, 1e-12);
  EXPECT_EQ(c.op(3).kind, GateKind::CX);
  EXPECT_NEAR(c.op(4).params[0], 2.0 * M_PI - M_PI / 3.0, 1e-12);
}

TEST(Qasm, MultipleRegistersConcatenate) {
  const char* src =
      "OPENQASM 2.0; qreg a[2]; qreg b[2]; cx a[1], b[0]; x b[1];";
  const cc::Circuit c = cc::parse_qasm(src);
  EXPECT_EQ(c.num_qubits(), 4);
  EXPECT_EQ(c.op(0).qubits[0], 1);
  EXPECT_EQ(c.op(0).qubits[1], 2);
  EXPECT_EQ(c.op(1).qubits[0], 3);
}

TEST(Qasm, SemanticsSurviveTheRoundTrip) {
  charter::util::Rng rng(31);
  cc::Circuit c(3);
  c.h(0).cp(0, 1, rng.uniform(-1.0, 1.0)).rzz(1, 2, 0.4).t(2).cx(2, 0);
  const cc::Circuit parsed = cc::parse_qasm(cc::to_qasm(c));
  charter::sim::Statevector a(3), b(3);
  a.apply(c);
  b.apply(parsed);
  EXPECT_NEAR(std::abs(a.inner_product(b)), 1.0, 1e-9);
}

TEST(Qasm, RejectsMalformedPrograms) {
  EXPECT_THROW(cc::parse_qasm("OPENQASM 2.0; cx q[0], q[1];"),
               charter::InvalidArgument);  // no qreg
  EXPECT_THROW(cc::parse_qasm("qreg q[2]; frobnicate q[0];"),
               charter::InvalidArgument);  // unknown gate
  EXPECT_THROW(cc::parse_qasm("qreg q[2]; cx q[0];"),
               charter::InvalidArgument);  // wrong arity
  EXPECT_THROW(cc::parse_qasm("qreg q[1]; x q[3];"),
               charter::InvalidArgument);  // index out of range
  EXPECT_THROW(cc::parse_qasm("qreg q[2]; gate foo a { x a; } foo q[0];"),
               charter::InvalidArgument);  // custom gates unsupported
}

TEST(Qasm, FileLoadingErrors) {
  EXPECT_THROW(cc::parse_qasm_file("/nonexistent/foo.qasm"),
               charter::NotFound);
}
