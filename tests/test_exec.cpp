// Tests for the batched execution subsystem: prefix-state checkpointing is
// bit-identical to naive per-gate runs, the run cache returns identical
// results on hits, non-exact configurations (trajectory engine, drift) fall
// back to independent full runs, engine clone/save/load round-trips, and the
// checkpoint memory budget degrades to replay instead of wrong answers.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "backend/backend.hpp"
#include "core/analyzer.hpp"
#include "core/reversal.hpp"
#include "exec/batch.hpp"
#include "exec/cache.hpp"
#include "exec/checkpoint.hpp"
#include "noise/executor.hpp"
#include "sim/density_matrix.hpp"
#include "sim/trajectory.hpp"

namespace cb = charter::backend;
namespace cc = charter::circ;
namespace cn = charter::noise;
namespace co = charter::core;
namespace cs = charter::sim;
namespace ex = charter::exec;
using cc::GateKind;

namespace {

/// A 5-qubit logical program with an input-prep region and enough depth to
/// compile to a few dozen basis gates.
cc::Circuit deep_logical(int rounds = 3) {
  cc::Circuit c(5);
  for (int q = 0; q < 5; ++q) c.h(q, cc::kFlagInputPrep);
  for (int r = 0; r < rounds; ++r) {
    for (int q = 0; q < 4; ++q) c.cx(q, q + 1);
    for (int q = 0; q < 5; ++q) c.t(q);
    c.cx(4, 3);
    for (int q = 0; q < 5; ++q) c.rx(q, 0.3 + 0.1 * q);
  }
  return c;
}

cb::CompiledProgram compiled_program(const cb::FakeBackend& backend,
                                     int rounds = 3) {
  return backend.compile(deep_logical(rounds));
}

/// Per-gate jobs mirroring what the analyzer submits (without going through
/// it), so BatchRunner behavior can be asserted directly.
struct JobSet {
  std::vector<cb::CompiledProgram> reversed;
  std::vector<ex::AnalysisJob> jobs;
};

JobSet make_jobs(const cb::CompiledProgram& program,
                 const std::vector<std::size_t>& gates,
                 const cb::RunOptions& run, int reversals = 2) {
  JobSet set;
  set.reversed.reserve(gates.size());
  for (const std::size_t g : gates) {
    cb::CompiledProgram rev = program;
    rev.physical =
        co::insert_reversed_pairs(program.physical, g, reversals, true);
    set.reversed.push_back(std::move(rev));
    cb::RunOptions opts = run;
    opts.seed = run.seed + g;
    set.jobs.push_back({&set.reversed.back(), opts, g + 1});
  }
  return set;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine checkpoint primitives
// ---------------------------------------------------------------------------

TEST(EngineCheckpoint, DensityMatrixSaveLoadRoundTrips) {
  cs::DensityMatrixEngine engine(3);
  engine.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0})),
                          0);
  engine.apply_cx(0, 1);
  engine.apply_depolarizing_2q(0, 1, 0.05);
  std::vector<charter::math::cplx> snap;
  engine.save_state(snap);
  const std::vector<double> before = engine.probabilities();

  engine.apply_thermal_relaxation(2, 0.3, 0.1);
  engine.apply_cx(1, 2);
  engine.load_state(snap);
  const std::vector<double> after = engine.probabilities();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]);
}

TEST(EngineCheckpoint, CloneEvolvesBitIdentically) {
  cs::TrajectoryEngine original(4, 0xfeedULL);
  // Burn some stochastic branches so the RNG stream is mid-flight.
  original.apply_bitflip(0, 0.4);
  original.apply_unitary_1q(
      cc::gate_unitary_1q(cc::make_gate(GateKind::SX, {1})), 1);
  original.apply_depolarizing_1q(1, 0.3);

  const std::unique_ptr<cs::NoisyEngine> copy = original.clone();
  for (cs::NoisyEngine* e :
       {static_cast<cs::NoisyEngine*>(&original), copy.get()}) {
    e->apply_depolarizing_2q(1, 2, 0.5);
    e->apply_thermal_relaxation(2, 0.2, 0.3);
    e->apply_cx(2, 3);
  }
  const std::vector<double> a = original.probabilities();
  const std::vector<double> b = copy->probabilities();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// ---------------------------------------------------------------------------
// Checkpoint plan exactness
// ---------------------------------------------------------------------------

TEST(CheckpointPlan, ResumedRunsMatchColdRunsBitExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);
  cb::RunOptions opts;
  opts.drift = 0.0;
  const cb::LoweredRun lowered = backend.lower(program, opts);
  const cn::NoisyExecutor executor(lowered.model);

  const std::vector<std::size_t> eligible =
      co::reversible_ops(lowered.local, true);
  ASSERT_GE(eligible.size(), 20u);

  std::vector<std::size_t> lens;
  for (const std::size_t g : eligible) lens.push_back(g + 1);
  const ex::CheckpointPlan plan(executor, lowered.local, lens,
                                512ull << 20);
  EXPECT_EQ(plan.num_checkpoints(), lens.size());

  cs::DensityMatrixEngine engine(lowered.local.num_qubits());
  for (const std::size_t g : {eligible.front(), eligible[eligible.size() / 2],
                              eligible.back()}) {
    const cc::Circuit derived =
        co::insert_reversed_pairs(lowered.local, g, 3, true);
    const std::vector<double> resumed = plan.run_shared(derived, g + 1, engine);

    cs::DensityMatrixEngine cold_engine(lowered.local.num_qubits());
    executor.run(derived, cold_engine);
    const std::vector<double> cold = cold_engine.probabilities();

    ASSERT_EQ(resumed.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
      EXPECT_EQ(resumed[i], cold[i]) << "outcome " << i << " gate " << g;
  }
  EXPECT_EQ(plan.stats().fallbacks, 0u);
  EXPECT_EQ(plan.stats().resumed, 3u);
}

TEST(CheckpointPlan, TinyMemoryBudgetReplaysGapsExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);
  const cb::LoweredRun lowered = backend.lower(program, cb::RunOptions{});
  const cn::NoisyExecutor executor(lowered.model);

  const std::vector<std::size_t> eligible =
      co::reversible_ops(lowered.local, true);
  std::vector<std::size_t> lens;
  for (const std::size_t g : eligible) lens.push_back(g + 1);

  // Budget for exactly two snapshots: everything else must replay.
  cs::DensityMatrixEngine probe(lowered.local.num_qubits());
  const ex::CheckpointPlan plan(executor, lowered.local, lens,
                                2 * probe.state_bytes());
  EXPECT_LE(plan.num_checkpoints(), 2u);
  EXPECT_GE(plan.num_checkpoints(), 1u);

  cs::DensityMatrixEngine engine(lowered.local.num_qubits());
  const std::size_t g = eligible[eligible.size() / 3];
  const cc::Circuit derived =
      co::insert_reversed_pairs(lowered.local, g, 2, true);
  const std::vector<double> resumed = plan.run_shared(derived, g + 1, engine);

  cs::DensityMatrixEngine cold_engine(lowered.local.num_qubits());
  executor.run(derived, cold_engine);
  const std::vector<double> cold = cold_engine.probabilities();
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(resumed[i], cold[i]);
}

// ---------------------------------------------------------------------------
// BatchRunner
// ---------------------------------------------------------------------------

TEST(BatchRunner, CheckpointedJobsMatchStandaloneRunsBitExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);
  cb::RunOptions run;
  run.shots = 4096;
  run.drift = 0.0;
  run.seed = 77;

  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  std::vector<std::size_t> gates(eligible.begin(),
                                 eligible.begin() + 8);
  JobSet set = make_jobs(program, gates, run);

  const ex::BatchRunner runner(backend, {true, false, 512ull << 20});
  const std::vector<std::vector<double>> dists = runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().checkpointed, set.jobs.size());
  EXPECT_EQ(runner.last_stats().full_runs, 0u);

  for (std::size_t k = 0; k < set.jobs.size(); ++k) {
    const std::vector<double> standalone =
        backend.run(*set.jobs[k].program, set.jobs[k].run);
    ASSERT_EQ(dists[k].size(), standalone.size());
    for (std::size_t i = 0; i < standalone.size(); ++i)
      EXPECT_EQ(dists[k][i], standalone[i])
          << "job " << k << " outcome " << i;
  }
}

TEST(BatchRunner, TrajectoryAndDriftFallBackToFullRuns) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  const std::vector<std::size_t> gates(eligible.begin(), eligible.begin() + 3);

  for (const bool use_drift : {false, true}) {
    cb::RunOptions run;
    run.shots = 1024;
    run.seed = 5;
    if (use_drift) {
      run.drift = 0.05;  // drifted model is seed-specific: no sharing
    } else {
      run.engine = cb::EngineKind::kTrajectory;  // stochastic: no sharing
      run.trajectories = 8;
    }
    JobSet set = make_jobs(program, gates, run);
    const ex::BatchRunner runner(backend, {true, false, 512ull << 20});
    const std::vector<std::vector<double>> dists =
        runner.run(set.jobs, &program);
    EXPECT_EQ(runner.last_stats().checkpointed, 0u);
    EXPECT_EQ(runner.last_stats().full_runs, set.jobs.size());
    for (std::size_t k = 0; k < set.jobs.size(); ++k) {
      const std::vector<double> standalone =
          backend.run(*set.jobs[k].program, set.jobs[k].run);
      for (std::size_t i = 0; i < standalone.size(); ++i)
        EXPECT_EQ(dists[k][i], standalone[i]);
    }
  }
}

TEST(BatchRunner, CacheHitsReturnIdenticalResults) {
  ex::RunCache::global().clear();
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  const std::vector<std::size_t> gates(eligible.begin(), eligible.begin() + 4);
  cb::RunOptions run;
  run.shots = 2048;
  run.seed = 13;
  JobSet set = make_jobs(program, gates, run);

  const ex::BatchRunner runner(backend, {true, true, 512ull << 20});
  const std::vector<std::vector<double>> cold = runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().cache_hits, 0u);

  const std::vector<std::vector<double>> warm = runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().cache_hits, set.jobs.size());
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t k = 0; k < cold.size(); ++k) {
    ASSERT_EQ(cold[k].size(), warm[k].size());
    for (std::size_t i = 0; i < cold[k].size(); ++i)
      EXPECT_EQ(cold[k][i], warm[k][i]);
  }

  // A different seed is a different key: no stale hit.
  set.jobs[0].run.seed ^= 0xabcdULL;
  const std::vector<std::vector<double>> reseeded =
      runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().cache_hits, set.jobs.size() - 1);
  ex::RunCache::global().clear();
}

// ---------------------------------------------------------------------------
// Analyzer-level equivalence (the tentpole guarantee)
// ---------------------------------------------------------------------------

TEST(AnalyzerEquivalence, CheckpointedAnalysisMatchesNaiveBitExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);

  co::CharterOptions options;
  options.reversals = 3;
  options.run.shots = 4096;
  options.run.seed = 2022;
  options.run.drift = 0.0;  // exact-sharing regime
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const co::CharterReport fast =
      co::CharterAnalyzer(backend, options).analyze(program);

  options.exec.checkpointing = false;
  const co::CharterReport naive =
      co::CharterAnalyzer(backend, options).analyze(program);

  ASSERT_GE(fast.analyzed_gates, 30u);
  ASSERT_EQ(fast.impacts.size(), naive.impacts.size());
  ASSERT_EQ(fast.original_distribution.size(),
            naive.original_distribution.size());
  for (std::size_t i = 0; i < fast.original_distribution.size(); ++i)
    EXPECT_EQ(fast.original_distribution[i], naive.original_distribution[i]);
  for (std::size_t k = 0; k < fast.impacts.size(); ++k) {
    EXPECT_EQ(fast.impacts[k].op_index, naive.impacts[k].op_index);
    EXPECT_EQ(fast.impacts[k].tvd, naive.impacts[k].tvd) << "gate " << k;
  }
}

TEST(AnalyzerEquivalence, InputImpactMatchesNaive) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);

  co::CharterOptions options;
  options.reversals = 2;
  options.run.shots = 2048;
  options.run.seed = 99;
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const double fast =
      co::CharterAnalyzer(backend, options).input_impact(program);
  options.exec.checkpointing = false;
  const double naive =
      co::CharterAnalyzer(backend, options).input_impact(program);
  EXPECT_EQ(fast, naive);
}

TEST(AnalyzerEquivalence, TrajectoryAnalysisUnchangedByBatching) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 1);

  co::CharterOptions options;
  options.reversals = 2;
  options.max_gates = 4;
  options.run.shots = 512;
  options.run.engine = cb::EngineKind::kTrajectory;
  options.run.trajectories = 6;
  options.run.seed = 3;
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const co::CharterReport a =
      co::CharterAnalyzer(backend, options).analyze(program);
  options.exec.checkpointing = false;
  const co::CharterReport b =
      co::CharterAnalyzer(backend, options).analyze(program);
  ASSERT_EQ(a.impacts.size(), b.impacts.size());
  for (std::size_t k = 0; k < a.impacts.size(); ++k)
    EXPECT_EQ(a.impacts[k].tvd, b.impacts[k].tvd);
}

// ---------------------------------------------------------------------------
// Fused-mode analysis (tape optimizer end to end)
// ---------------------------------------------------------------------------

TEST(FusedAnalysis, RankingsMatchExactAnalysis) {
  // Acceptance: with fusion on, analyzer gate rankings are unchanged while
  // every TVD agrees with the exact run to well below ranking resolution.
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);

  co::CharterOptions options;
  options.reversals = 3;
  options.run.shots = 0;  // exact engine distributions: deterministic TVDs
  options.run.seed = 2022;
  options.exec.caching = false;
  options.exec.checkpointing = true;

  options.run.opt = charter::noise::OptLevel::kExact;
  const co::CharterReport exact =
      co::CharterAnalyzer(backend, options).analyze(program);
  options.run.opt = charter::noise::OptLevel::kFused;
  const co::CharterReport fused =
      co::CharterAnalyzer(backend, options).analyze(program);

  ASSERT_GE(exact.analyzed_gates, 30u);
  ASSERT_EQ(exact.impacts.size(), fused.impacts.size());
  for (std::size_t k = 0; k < exact.impacts.size(); ++k)
    EXPECT_NEAR(exact.impacts[k].tvd, fused.impacts[k].tvd, 1e-10)
        << "gate " << k;

  const auto exact_ranked = exact.sorted_by_impact();
  const auto fused_ranked = fused.sorted_by_impact();
  for (std::size_t k = 0; k < exact_ranked.size(); ++k)
    EXPECT_EQ(exact_ranked[k].op_index, fused_ranked[k].op_index)
        << "rank " << k;
}

TEST(FusedAnalysis, CheckpointedMatchesNaiveWithinTolerance) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);

  co::CharterOptions options;
  options.reversals = 2;
  options.run.shots = 0;
  options.run.seed = 5;
  options.run.opt = charter::noise::OptLevel::kFused;
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const co::CharterReport fast =
      co::CharterAnalyzer(backend, options).analyze(program);
  options.exec.checkpointing = false;
  const co::CharterReport naive =
      co::CharterAnalyzer(backend, options).analyze(program);

  ASSERT_EQ(fast.impacts.size(), naive.impacts.size());
  for (std::size_t k = 0; k < fast.impacts.size(); ++k)
    EXPECT_NEAR(fast.impacts[k].tvd, naive.impacts[k].tvd, 1e-10);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprints, OptimizationLevelChangesRunKeys) {
  cb::RunOptions exact, fused;
  fused.opt = charter::noise::OptLevel::kFused;
  EXPECT_FALSE(ex::fingerprint(exact) == ex::fingerprint(fused));

  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram p = compiled_program(backend, 1);
  EXPECT_FALSE(ex::run_key(p, backend, exact) ==
               ex::run_key(p, backend, fused));
}

TEST(Fingerprints, DistinguishProgramsOptionsAndDevices) {
  const cb::FakeBackend lagos_a = cb::FakeBackend::lagos(7);
  const cb::FakeBackend lagos_b = cb::FakeBackend::lagos(8);  // same name!
  const cb::CompiledProgram p1 = compiled_program(lagos_a, 1);
  cb::CompiledProgram p2 = p1;
  p2.physical.mutable_op(0).params[0] += 1e-9;

  EXPECT_FALSE(ex::fingerprint(p1) == ex::fingerprint(p2));
  EXPECT_FALSE(ex::fingerprint(lagos_a) == ex::fingerprint(lagos_b));

  cb::RunOptions r1, r2;
  r2.seed = r1.seed + 1;
  EXPECT_FALSE(ex::fingerprint(r1) == ex::fingerprint(r2));
  EXPECT_TRUE(ex::fingerprint(r1) == ex::fingerprint(cb::RunOptions{}));
}
