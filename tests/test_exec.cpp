// Tests for the batched execution subsystem: prefix-state checkpointing is
// bit-identical to naive per-gate runs, the run cache returns identical
// results on hits, non-exact configurations fall back to independent full
// runs, engine clone/save/load round-trips, the checkpoint memory budget
// degrades to replay instead of wrong answers, trajectory jobs resume from
// RNG-carrying engine clones, shards partition by checkpoint segment, the
// striped cache survives concurrent hammering, and — the parallel driver's
// headline contract — full CharterReports are bit-identical at every worker
// pool width.

#include <gtest/gtest.h>

#include <cstdlib>

#include <cmath>
#include <set>
#include <vector>

#include "backend/backend.hpp"
#include "core/analyzer.hpp"
#include "core/reversal.hpp"
#include "exec/batch.hpp"
#include "exec/cache.hpp"
#include "exec/checkpoint.hpp"
#include "exec/sharding.hpp"
#include "exec/trajectory_plan.hpp"
#include "noise/executor.hpp"
#include "sim/density_matrix.hpp"
#include "sim/trajectory.hpp"
#include "util/thread_pool.hpp"

namespace cb = charter::backend;
namespace cc = charter::circ;
namespace cn = charter::noise;
namespace co = charter::core;
namespace cs = charter::sim;
namespace cu = charter::util;
namespace ex = charter::exec;
using cc::GateKind;

namespace {

/// A 5-qubit logical program with an input-prep region and enough depth to
/// compile to a few dozen basis gates.
cc::Circuit deep_logical(int rounds = 3) {
  cc::Circuit c(5);
  for (int q = 0; q < 5; ++q) c.h(q, cc::kFlagInputPrep);
  for (int r = 0; r < rounds; ++r) {
    for (int q = 0; q < 4; ++q) c.cx(q, q + 1);
    for (int q = 0; q < 5; ++q) c.t(q);
    c.cx(4, 3);
    for (int q = 0; q < 5; ++q) c.rx(q, 0.3 + 0.1 * q);
  }
  return c;
}

cb::CompiledProgram compiled_program(const cb::FakeBackend& backend,
                                     int rounds = 3) {
  return backend.compile(deep_logical(rounds));
}

/// Per-gate jobs mirroring what the analyzer submits (without going through
/// it), so BatchRunner behavior can be asserted directly.
struct JobSet {
  std::vector<cb::CompiledProgram> reversed;
  std::vector<ex::AnalysisJob> jobs;
};

JobSet make_jobs(const cb::CompiledProgram& program,
                 const std::vector<std::size_t>& gates,
                 const cb::RunOptions& run, int reversals = 2,
                 bool common_seed = false) {
  JobSet set;
  set.reversed.reserve(gates.size());
  for (const std::size_t g : gates) {
    cb::CompiledProgram rev = program;
    rev.physical =
        co::insert_reversed_pairs(program.physical, g, reversals, true);
    set.reversed.push_back(std::move(rev));
    cb::RunOptions opts = run;
    if (!common_seed) opts.seed = run.seed + g;
    set.jobs.push_back({&set.reversed.back(), opts, g + 1});
  }
  return set;
}

}  // namespace

// ---------------------------------------------------------------------------
// Engine checkpoint primitives
// ---------------------------------------------------------------------------

TEST(EngineCheckpoint, DensityMatrixSaveLoadRoundTrips) {
  cs::DensityMatrixEngine engine(3);
  engine.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0})),
                          0);
  engine.apply_cx(0, 1);
  engine.apply_depolarizing_2q(0, 1, 0.05);
  std::vector<charter::math::cplx> snap;
  engine.save_state(snap);
  const std::vector<double> before = engine.probabilities();

  engine.apply_thermal_relaxation(2, 0.3, 0.1);
  engine.apply_cx(1, 2);
  engine.load_state(snap);
  const std::vector<double> after = engine.probabilities();
  ASSERT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_EQ(before[i], after[i]);
}

TEST(EngineCheckpoint, CloneEvolvesBitIdentically) {
  cs::TrajectoryEngine original(4, 0xfeedULL);
  // Burn some stochastic branches so the RNG stream is mid-flight.
  original.apply_bitflip(0, 0.4);
  original.apply_unitary_1q(
      cc::gate_unitary_1q(cc::make_gate(GateKind::SX, {1})), 1);
  original.apply_depolarizing_1q(1, 0.3);

  const std::unique_ptr<cs::NoisyEngine> copy = original.clone();
  for (cs::NoisyEngine* e :
       {static_cast<cs::NoisyEngine*>(&original), copy.get()}) {
    e->apply_depolarizing_2q(1, 2, 0.5);
    e->apply_thermal_relaxation(2, 0.2, 0.3);
    e->apply_cx(2, 3);
  }
  const std::vector<double> a = original.probabilities();
  const std::vector<double> b = copy->probabilities();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
}

// ---------------------------------------------------------------------------
// Checkpoint plan exactness
// ---------------------------------------------------------------------------

TEST(CheckpointPlan, ResumedRunsMatchColdRunsBitExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);
  cb::RunOptions opts;
  opts.drift = 0.0;
  const cb::LoweredRun lowered = backend.lower(program, opts);
  const cn::NoisyExecutor executor(lowered.model);

  const std::vector<std::size_t> eligible =
      co::reversible_ops(lowered.local, true);
  ASSERT_GE(eligible.size(), 20u);

  std::vector<std::size_t> lens;
  for (const std::size_t g : eligible) lens.push_back(g + 1);
  const ex::CheckpointPlan plan(executor, lowered.local, lens,
                                512ull << 20);
  EXPECT_EQ(plan.num_checkpoints(), lens.size());

  cs::DensityMatrixEngine engine(lowered.local.num_qubits());
  for (const std::size_t g : {eligible.front(), eligible[eligible.size() / 2],
                              eligible.back()}) {
    const cc::Circuit derived =
        co::insert_reversed_pairs(lowered.local, g, 3, true);
    const std::vector<double> resumed = plan.run_shared(derived, g + 1, engine);

    cs::DensityMatrixEngine cold_engine(lowered.local.num_qubits());
    executor.run(derived, cold_engine);
    const std::vector<double> cold = cold_engine.probabilities();

    ASSERT_EQ(resumed.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
      EXPECT_EQ(resumed[i], cold[i]) << "outcome " << i << " gate " << g;
  }
  EXPECT_EQ(plan.stats().fallbacks, 0u);
  EXPECT_EQ(plan.stats().resumed, 3u);
}

TEST(CheckpointPlan, TinyMemoryBudgetReplaysGapsExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);
  const cb::LoweredRun lowered = backend.lower(program, cb::RunOptions{});
  const cn::NoisyExecutor executor(lowered.model);

  const std::vector<std::size_t> eligible =
      co::reversible_ops(lowered.local, true);
  std::vector<std::size_t> lens;
  for (const std::size_t g : eligible) lens.push_back(g + 1);

  // Budget for exactly two snapshots: everything else must replay.
  cs::DensityMatrixEngine probe(lowered.local.num_qubits());
  const ex::CheckpointPlan plan(executor, lowered.local, lens,
                                2 * probe.state_bytes());
  EXPECT_LE(plan.num_checkpoints(), 2u);
  EXPECT_GE(plan.num_checkpoints(), 1u);

  cs::DensityMatrixEngine engine(lowered.local.num_qubits());
  const std::size_t g = eligible[eligible.size() / 3];
  const cc::Circuit derived =
      co::insert_reversed_pairs(lowered.local, g, 2, true);
  const std::vector<double> resumed = plan.run_shared(derived, g + 1, engine);

  cs::DensityMatrixEngine cold_engine(lowered.local.num_qubits());
  executor.run(derived, cold_engine);
  const std::vector<double> cold = cold_engine.probabilities();
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(resumed[i], cold[i]);
}

// ---------------------------------------------------------------------------
// BatchRunner
// ---------------------------------------------------------------------------

TEST(BatchRunner, CheckpointedJobsMatchStandaloneRunsBitExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);
  cb::RunOptions run;
  run.shots = 4096;
  run.drift = 0.0;
  run.seed = 77;

  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  std::vector<std::size_t> gates(eligible.begin(),
                                 eligible.begin() + 8);
  JobSet set = make_jobs(program, gates, run);

  const ex::BatchRunner runner(backend, {true, false, 512ull << 20});
  const std::vector<std::vector<double>> dists = runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().checkpointed, set.jobs.size());
  EXPECT_EQ(runner.last_stats().full_runs, 0u);

  for (std::size_t k = 0; k < set.jobs.size(); ++k) {
    const std::vector<double> standalone =
        backend.run(*set.jobs[k].program, set.jobs[k].run);
    ASSERT_EQ(dists[k].size(), standalone.size());
    for (std::size_t i = 0; i < standalone.size(); ++i)
      EXPECT_EQ(dists[k][i], standalone[i])
          << "job " << k << " outcome " << i;
  }
}

TEST(BatchRunner, TrajectoryAndDriftFallBackToFullRuns) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  const std::vector<std::size_t> gates(eligible.begin(), eligible.begin() + 3);

  for (const bool use_drift : {false, true}) {
    cb::RunOptions run;
    run.shots = 1024;
    run.seed = 5;
    if (use_drift) {
      run.drift = 0.05;  // drifted model is seed-specific: no sharing
    } else {
      run.engine = cb::EngineKind::kTrajectory;  // stochastic: no sharing
      run.trajectories = 8;
    }
    JobSet set = make_jobs(program, gates, run);
    const ex::BatchRunner runner(backend, {true, false, 512ull << 20});
    const std::vector<std::vector<double>> dists =
        runner.run(set.jobs, &program);
    EXPECT_EQ(runner.last_stats().checkpointed, 0u);
    EXPECT_EQ(runner.last_stats().full_runs, set.jobs.size());
    for (std::size_t k = 0; k < set.jobs.size(); ++k) {
      const std::vector<double> standalone =
          backend.run(*set.jobs[k].program, set.jobs[k].run);
      for (std::size_t i = 0; i < standalone.size(); ++i)
        EXPECT_EQ(dists[k][i], standalone[i]);
    }
  }
}

TEST(BatchRunner, CacheHitsReturnIdenticalResults) {
  ex::RunCache::global().clear();
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  const std::vector<std::size_t> gates(eligible.begin(), eligible.begin() + 4);
  cb::RunOptions run;
  run.shots = 2048;
  run.seed = 13;
  JobSet set = make_jobs(program, gates, run);

  const ex::BatchRunner runner(backend, {true, true, 512ull << 20});
  const std::vector<std::vector<double>> cold = runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().cache_hits, 0u);

  const std::vector<std::vector<double>> warm = runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().cache_hits, set.jobs.size());
  ASSERT_EQ(cold.size(), warm.size());
  for (std::size_t k = 0; k < cold.size(); ++k) {
    ASSERT_EQ(cold[k].size(), warm[k].size());
    for (std::size_t i = 0; i < cold[k].size(); ++i)
      EXPECT_EQ(cold[k][i], warm[k][i]);
  }

  // A different seed is a different key: no stale hit.
  set.jobs[0].run.seed ^= 0xabcdULL;
  const std::vector<std::vector<double>> reseeded =
      runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().cache_hits, set.jobs.size() - 1);
  ex::RunCache::global().clear();
}

// ---------------------------------------------------------------------------
// Analyzer-level equivalence (the tentpole guarantee)
// ---------------------------------------------------------------------------

TEST(AnalyzerEquivalence, CheckpointedAnalysisMatchesNaiveBitExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);

  co::CharterOptions options;
  options.reversals = 3;
  options.run.shots = 4096;
  options.run.seed = 2022;
  options.run.drift = 0.0;  // exact-sharing regime
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const co::CharterReport fast =
      co::CharterAnalyzer(backend, options).analyze(program);

  options.exec.checkpointing = false;
  const co::CharterReport naive =
      co::CharterAnalyzer(backend, options).analyze(program);

  ASSERT_GE(fast.analyzed_gates, 30u);
  ASSERT_EQ(fast.impacts.size(), naive.impacts.size());
  ASSERT_EQ(fast.original_distribution.size(),
            naive.original_distribution.size());
  for (std::size_t i = 0; i < fast.original_distribution.size(); ++i)
    EXPECT_EQ(fast.original_distribution[i], naive.original_distribution[i]);
  for (std::size_t k = 0; k < fast.impacts.size(); ++k) {
    EXPECT_EQ(fast.impacts[k].op_index, naive.impacts[k].op_index);
    EXPECT_EQ(fast.impacts[k].tvd, naive.impacts[k].tvd) << "gate " << k;
  }
}

TEST(AnalyzerEquivalence, InputImpactMatchesNaive) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);

  co::CharterOptions options;
  options.reversals = 2;
  options.run.shots = 2048;
  options.run.seed = 99;
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const double fast =
      co::CharterAnalyzer(backend, options).input_impact(program);
  options.exec.checkpointing = false;
  const double naive =
      co::CharterAnalyzer(backend, options).input_impact(program);
  EXPECT_EQ(fast, naive);
}

TEST(AnalyzerEquivalence, TrajectoryAnalysisUnchangedByBatching) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 1);

  co::CharterOptions options;
  options.reversals = 2;
  options.max_gates = 4;
  options.run.shots = 512;
  options.run.engine = cb::EngineKind::kTrajectory;
  options.run.trajectories = 6;
  options.run.seed = 3;
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const co::CharterReport a =
      co::CharterAnalyzer(backend, options).analyze(program);
  options.exec.checkpointing = false;
  const co::CharterReport b =
      co::CharterAnalyzer(backend, options).analyze(program);
  ASSERT_EQ(a.impacts.size(), b.impacts.size());
  for (std::size_t k = 0; k < a.impacts.size(); ++k)
    EXPECT_EQ(a.impacts[k].tvd, b.impacts[k].tvd);
}

// ---------------------------------------------------------------------------
// Fused-mode analysis (tape optimizer end to end)
// ---------------------------------------------------------------------------

TEST(FusedAnalysis, RankingsMatchExactAnalysis) {
  // Acceptance: with fusion on, analyzer gate rankings are unchanged while
  // every TVD agrees with the exact run to well below ranking resolution.
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend);

  co::CharterOptions options;
  options.reversals = 3;
  options.run.shots = 0;  // exact engine distributions: deterministic TVDs
  options.run.seed = 2022;
  options.exec.caching = false;
  options.exec.checkpointing = true;

  options.run.opt = charter::noise::OptLevel::kExact;
  const co::CharterReport exact =
      co::CharterAnalyzer(backend, options).analyze(program);
  options.run.opt = charter::noise::OptLevel::kFused;
  const co::CharterReport fused =
      co::CharterAnalyzer(backend, options).analyze(program);

  ASSERT_GE(exact.analyzed_gates, 30u);
  ASSERT_EQ(exact.impacts.size(), fused.impacts.size());
  for (std::size_t k = 0; k < exact.impacts.size(); ++k)
    EXPECT_NEAR(exact.impacts[k].tvd, fused.impacts[k].tvd, 1e-10)
        << "gate " << k;

  const auto exact_ranked = exact.sorted_by_impact();
  const auto fused_ranked = fused.sorted_by_impact();
  for (std::size_t k = 0; k < exact_ranked.size(); ++k)
    EXPECT_EQ(exact_ranked[k].op_index, fused_ranked[k].op_index)
        << "rank " << k;
}

TEST(FusedAnalysis, CheckpointedMatchesNaiveWithinTolerance) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);

  co::CharterOptions options;
  options.reversals = 2;
  options.run.shots = 0;
  options.run.seed = 5;
  options.run.opt = charter::noise::OptLevel::kFused;
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const co::CharterReport fast =
      co::CharterAnalyzer(backend, options).analyze(program);
  options.exec.checkpointing = false;
  const co::CharterReport naive =
      co::CharterAnalyzer(backend, options).analyze(program);

  ASSERT_EQ(fast.impacts.size(), naive.impacts.size());
  for (std::size_t k = 0; k < fast.impacts.size(); ++k)
    EXPECT_NEAR(fast.impacts[k].tvd, naive.impacts[k].tvd, 1e-10);
}

// ---------------------------------------------------------------------------
// Fingerprints
// ---------------------------------------------------------------------------

TEST(Fingerprints, OptimizationLevelChangesRunKeys) {
  cb::RunOptions exact, fused;
  fused.opt = charter::noise::OptLevel::kFused;
  EXPECT_FALSE(ex::fingerprint(exact) == ex::fingerprint(fused));

  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram p = compiled_program(backend, 1);
  EXPECT_FALSE(ex::run_key(p, backend, exact) ==
               ex::run_key(p, backend, fused));
}

TEST(Fingerprints, DistinguishProgramsOptionsAndDevices) {
  const cb::FakeBackend lagos_a = cb::FakeBackend::lagos(7);
  const cb::FakeBackend lagos_b = cb::FakeBackend::lagos(8);  // same name!
  const cb::CompiledProgram p1 = compiled_program(lagos_a, 1);
  cb::CompiledProgram p2 = p1;
  p2.physical.mutable_op(0).params[0] += 1e-9;

  EXPECT_FALSE(ex::fingerprint(p1) == ex::fingerprint(p2));
  EXPECT_FALSE(ex::fingerprint(lagos_a) == ex::fingerprint(lagos_b));

  cb::RunOptions r1, r2;
  r2.seed = r1.seed + 1;
  EXPECT_FALSE(ex::fingerprint(r1) == ex::fingerprint(r2));
  EXPECT_TRUE(ex::fingerprint(r1) == ex::fingerprint(cb::RunOptions{}));
}

// ---------------------------------------------------------------------------
// Shard construction
// ---------------------------------------------------------------------------

TEST(Sharding, GroupsBySegmentPreservingSubmissionOrder) {
  const std::vector<std::size_t> jobs = {10, 11, 12, 13, 14, 15};
  const std::vector<std::size_t> segments = {2, 0, 2, 2, 1, 0};
  const std::vector<ex::Shard> shards = ex::make_shards(jobs, segments, 100);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].segment, 0u);
  EXPECT_EQ(shards[0].jobs, (std::vector<std::size_t>{11, 15}));
  EXPECT_EQ(shards[1].segment, 1u);
  EXPECT_EQ(shards[1].jobs, (std::vector<std::size_t>{14}));
  EXPECT_EQ(shards[2].segment, 2u);
  EXPECT_EQ(shards[2].jobs, (std::vector<std::size_t>{10, 12, 13}));
}

TEST(Sharding, SplitsOversizedSegments) {
  const std::vector<std::size_t> jobs = {0, 1, 2, 3, 4};
  const std::vector<std::size_t> segments = {7, 7, 7, 7, 7};
  const std::vector<ex::Shard> shards = ex::make_shards(jobs, segments, 2);
  ASSERT_EQ(shards.size(), 3u);
  EXPECT_EQ(shards[0].jobs, (std::vector<std::size_t>{0, 1}));
  EXPECT_EQ(shards[1].jobs, (std::vector<std::size_t>{2, 3}));
  EXPECT_EQ(shards[2].jobs, (std::vector<std::size_t>{4}));
  for (const ex::Shard& s : shards) EXPECT_EQ(s.segment, 7u);
}

TEST(Sharding, DefaultMaxShardJobsKeepsPoolBalanced) {
  // ~4 claims per worker, never below one job per shard.
  EXPECT_EQ(ex::default_max_shard_jobs(0, 4), 1u);
  EXPECT_EQ(ex::default_max_shard_jobs(15, 4), 1u);
  EXPECT_EQ(ex::default_max_shard_jobs(160, 4), 10u);
  EXPECT_EQ(ex::default_max_shard_jobs(160, 1), 40u);
}

TEST(CheckpointPlan, SegmentOfIsMonotoneAndCoversAllSnapshots) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const cb::LoweredRun lowered = backend.lower(program, cb::RunOptions{});
  const cn::NoisyExecutor executor(lowered.model);
  const std::vector<std::size_t> eligible =
      co::reversible_ops(lowered.local, true);
  std::vector<std::size_t> lens;
  for (const std::size_t g : eligible) lens.push_back(g + 1);
  const ex::CheckpointPlan plan(executor, lowered.local, lens, 512ull << 20);

  EXPECT_EQ(plan.segment_of(0), 0u);
  EXPECT_EQ(plan.num_segments(), plan.num_checkpoints() + 1);
  std::size_t last = 0;
  std::set<std::size_t> seen;
  for (std::size_t len = 0; len <= lowered.local.size(); ++len) {
    const std::size_t seg = plan.segment_of(len);
    EXPECT_GE(seg, last);  // deeper prefixes never map to earlier segments
    last = seg;
    seen.insert(seg);
  }
  EXPECT_EQ(seen.size(), plan.num_segments());
  EXPECT_EQ(plan.segment_of(lowered.local.size()), plan.num_checkpoints());
}

// ---------------------------------------------------------------------------
// Striped run cache
// ---------------------------------------------------------------------------

TEST(RunCacheStriping, KeysSpreadAcrossShards) {
  std::set<std::size_t> used;
  for (int i = 0; i < 256; ++i) {
    ex::FingerprintBuilder b;
    b.mix(static_cast<std::uint64_t>(i));
    used.insert(ex::RunCache::shard_index(b.result()));
  }
  // 256 well-mixed keys over 16 stripes should touch every stripe.
  EXPECT_EQ(used.size(), ex::RunCache::kNumShards);
}

TEST(RunCacheStriping, ConcurrentStoresAndLookupsStayConsistent) {
  ex::RunCache cache(64ull << 20);
  constexpr int kKeys = 512;
  const auto key_of = [](int i) {
    ex::FingerprintBuilder b;
    b.mix(static_cast<std::uint64_t>(i) * 0x9e37ULL + 11);
    return b.result();
  };
  cu::ThreadPool pool(8);
  // Hammer every stripe from all workers: store, then immediately read back.
  pool.run(kKeys, [&](std::int64_t i, int) {
    const ex::Fingerprint key = key_of(static_cast<int>(i));
    cache.store(key, {static_cast<double>(i), 1.0});
    const auto hit = cache.lookup(key);
    ASSERT_TRUE(hit.has_value());
    ASSERT_EQ((*hit)[0], static_cast<double>(i));
  });
  EXPECT_EQ(cache.stats().entries, static_cast<std::size_t>(kKeys));
  EXPECT_GE(cache.stats().hits, static_cast<std::size_t>(kKeys));
  for (int i = 0; i < kKeys; ++i) {
    const auto hit = cache.lookup(key_of(i));
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ((*hit)[0], static_cast<double>(i));
  }
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(RunCacheStriping, EntryLargerThanShardShareIsStillAdmitted) {
  // Admission is against the total budget: an entry bigger than one
  // stripe's even split (but within the budget) drains its stripe and is
  // cached alone, instead of being silently uncacheable.
  ex::RunCache cache(ex::RunCache::kNumShards * 4 * sizeof(double));
  ex::FingerprintBuilder b;
  b.mix(42);
  const std::vector<double> big(8, 1.5);  // 2x the per-shard share
  cache.store(b.result(), big);
  const auto hit = cache.lookup(b.result());
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->size(), big.size());
  // Beyond the total budget is still rejected.
  ex::FingerprintBuilder b2;
  b2.mix(43);
  cache.store(b2.result(), std::vector<double>(1000, 0.0));
  EXPECT_FALSE(cache.lookup(b2.result()).has_value());
}

TEST(RunCacheStriping, PerShardBudgetEvictsOldestWithinStripe) {
  // Budget for ~2 entries per stripe; flooding one stripe must evict its own
  // oldest entries and leave other stripes untouched.
  ex::RunCache cache(ex::RunCache::kNumShards * 4 * sizeof(double));
  std::vector<ex::Fingerprint> same_stripe;
  for (int i = 0; same_stripe.size() < 5; ++i) {
    ex::FingerprintBuilder b;
    b.mix(static_cast<std::uint64_t>(i) + 1000);
    if (ex::RunCache::shard_index(b.result()) == 0)
      same_stripe.push_back(b.result());
  }
  for (std::size_t k = 0; k < same_stripe.size(); ++k)
    cache.store(same_stripe[k], {static_cast<double>(k), 0.0});
  EXPECT_GT(cache.stats().evictions, 0u);
  // The newest entry survived; the oldest was evicted.
  EXPECT_TRUE(cache.lookup(same_stripe.back()).has_value());
  EXPECT_FALSE(cache.lookup(same_stripe.front()).has_value());
}

// ---------------------------------------------------------------------------
// Trajectory checkpoint plan
// ---------------------------------------------------------------------------

TEST(TrajectoryCheckpointPlan, ResumedUnravellingsMatchColdRunsBitExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  cb::RunOptions opts;
  opts.drift = 0.0;
  const cb::LoweredRun lowered = backend.lower(program, opts);
  const cn::NoisyExecutor executor(lowered.model);
  const int width = lowered.local.num_qubits();
  constexpr int kTrajectories = 6;
  constexpr std::uint64_t kSeed = 123;

  const std::vector<std::size_t> eligible =
      co::reversible_ops(lowered.local, true);
  ASSERT_GE(eligible.size(), 10u);
  std::vector<std::size_t> lens;
  for (const std::size_t g : eligible) lens.push_back(g + 1);

  cu::ThreadPool pool(2);
  const ex::TrajectoryCheckpointPlan plan(executor, lowered.local, lens,
                                          kTrajectories, kSeed,
                                          512ull << 20, pool);
  EXPECT_EQ(plan.num_checkpoints(), lens.size());

  // The base sweep reproduces a standalone trajectory run of the base.
  {
    const cn::NoiseProgram tape = executor.lower(lowered.local);
    const std::vector<double> cold = cs::run_trajectories(
        width, kTrajectories, kSeed ^ cb::kTrajectorySeedSalt,
        [&](cs::NoisyEngine& e) { tape.execute(e); });
    ASSERT_EQ(plan.base_probabilities().size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
      EXPECT_EQ(plan.base_probabilities()[i], cold[i]) << "outcome " << i;
  }

  for (const std::size_t g : {eligible.front(), eligible[eligible.size() / 2],
                              eligible.back()}) {
    const cc::Circuit derived =
        co::insert_reversed_pairs(lowered.local, g, 2, true);
    const std::vector<double> resumed = plan.run_shared(derived, g + 1);

    const cn::NoiseProgram tape = executor.lower(derived);
    const std::vector<double> cold = cs::run_trajectories(
        width, kTrajectories, kSeed ^ cb::kTrajectorySeedSalt,
        [&](cs::NoisyEngine& e) { tape.execute(e); });

    ASSERT_EQ(resumed.size(), cold.size());
    for (std::size_t i = 0; i < cold.size(); ++i)
      EXPECT_EQ(resumed[i], cold[i]) << "outcome " << i << " gate " << g;
  }
  EXPECT_EQ(plan.stats().fallbacks, 0u);
  EXPECT_EQ(plan.stats().resumed, 3u);
}

TEST(TrajectoryCheckpointPlan, TinyBudgetReplaysGapsExactly) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const cb::LoweredRun lowered = backend.lower(program, cb::RunOptions{});
  const cn::NoisyExecutor executor(lowered.model);
  const int width = lowered.local.num_qubits();
  constexpr int kTrajectories = 5;
  constexpr std::uint64_t kSeed = 9;

  const std::vector<std::size_t> eligible =
      co::reversible_ops(lowered.local, true);
  std::vector<std::size_t> lens;
  for (const std::size_t g : eligible) lens.push_back(g + 1);

  // Budget for roughly two clone sets: everything else must replay.
  const std::size_t per_snapshot =
      ((std::size_t{16} << width) + 64) * kTrajectories;
  cu::ThreadPool pool(1);
  const ex::TrajectoryCheckpointPlan plan(executor, lowered.local, lens,
                                          kTrajectories, kSeed,
                                          2 * per_snapshot, pool);
  EXPECT_LE(plan.num_checkpoints(), 2u);
  EXPECT_GE(plan.num_checkpoints(), 1u);

  const std::size_t g = eligible[eligible.size() / 3];
  const cc::Circuit derived =
      co::insert_reversed_pairs(lowered.local, g, 2, true);
  const std::vector<double> resumed = plan.run_shared(derived, g + 1);

  const cn::NoiseProgram tape = executor.lower(derived);
  const std::vector<double> cold = cs::run_trajectories(
      width, kTrajectories, kSeed ^ cb::kTrajectorySeedSalt,
      [&](cs::NoisyEngine& e) { tape.execute(e); });
  for (std::size_t i = 0; i < cold.size(); ++i)
    EXPECT_EQ(resumed[i], cold[i]);
}

TEST(BatchRunner, SeedAlignedTrajectoryJobsShareCheckpoints) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  const std::vector<std::size_t> gates(eligible.begin(), eligible.begin() + 4);

  cb::RunOptions run;
  run.shots = 1024;
  run.seed = 5;
  run.engine = cb::EngineKind::kTrajectory;
  run.trajectories = 8;
  // All jobs share the seed, so the prefix draws are identical per
  // unravelling and clone resumption is exact.
  JobSet set = make_jobs(program, gates, run, 2, /*common_seed=*/true);

  const ex::BatchRunner runner(backend, {true, false, 512ull << 20});
  const std::vector<std::vector<double>> dists = runner.run(set.jobs, &program);
  EXPECT_EQ(runner.last_stats().trajectory_checkpointed, set.jobs.size());
  EXPECT_EQ(runner.last_stats().full_runs, 0u);
  EXPECT_EQ(runner.last_stats().checkpointed, 0u);

  for (std::size_t k = 0; k < set.jobs.size(); ++k) {
    const std::vector<double> standalone =
        backend.run(*set.jobs[k].program, set.jobs[k].run);
    ASSERT_EQ(dists[k].size(), standalone.size());
    for (std::size_t i = 0; i < standalone.size(); ++i)
      EXPECT_EQ(dists[k][i], standalone[i]) << "job " << k << " outcome " << i;
  }
}

TEST(AnalyzerEquivalence, CommonRandomNumbersTrajectorySharingMatchesNaive) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 1);

  co::CharterOptions options;
  options.reversals = 2;
  options.max_gates = 5;
  options.run.shots = 512;
  options.run.engine = cb::EngineKind::kTrajectory;
  options.run.trajectories = 6;
  options.run.seed = 3;
  options.common_random_numbers = true;
  options.exec.caching = false;

  options.exec.checkpointing = true;
  const co::CharterAnalyzer fast_analyzer(backend, options);
  const co::CharterReport fast = fast_analyzer.analyze(program);
  EXPECT_GT(fast.exec_stats.trajectory_checkpointed, 0u);

  options.exec.checkpointing = false;
  const co::CharterReport naive =
      co::CharterAnalyzer(backend, options).analyze(program);

  ASSERT_EQ(fast.impacts.size(), naive.impacts.size());
  for (std::size_t k = 0; k < fast.impacts.size(); ++k)
    EXPECT_EQ(fast.impacts[k].tvd, naive.impacts[k].tvd) << "gate " << k;
}

// ---------------------------------------------------------------------------
// Determinism matrix: the parallel driver's headline contract.  The full
// CharterReport — every score, the output distribution, and the exec layer's
// cache/checkpoint counters — is bit-identical at every worker-pool width,
// for the density-matrix engine (exact and fused tapes) and the trajectory
// engine (independent seeds and common random numbers).
// ---------------------------------------------------------------------------

namespace {

struct MatrixRun {
  co::CharterReport cold_report;
  co::CharterReport warm_report;
  ex::BatchRunner::Stats cold_stats;
  ex::BatchRunner::Stats warm_stats;
};

MatrixRun analyze_at_width(const cb::FakeBackend& backend,
                           const cb::CompiledProgram& program,
                           co::CharterOptions options, int threads) {
  options.exec.threads = threads;
  options.exec.caching = true;
  ex::RunCache::global().clear();
  const co::CharterAnalyzer analyzer(backend, options);
  MatrixRun out;
  out.cold_report = analyzer.analyze(program);
  out.cold_stats = out.cold_report.exec_stats;
  out.warm_report = analyzer.analyze(program);  // all jobs served from cache
  out.warm_stats = out.warm_report.exec_stats;
  ex::RunCache::global().clear();
  return out;
}

void expect_reports_identical(const co::CharterReport& a,
                              const co::CharterReport& b,
                              const std::string& label) {
  ASSERT_EQ(a.impacts.size(), b.impacts.size()) << label;
  ASSERT_EQ(a.original_distribution.size(), b.original_distribution.size())
      << label;
  for (std::size_t i = 0; i < a.original_distribution.size(); ++i)
    EXPECT_EQ(a.original_distribution[i], b.original_distribution[i])
        << label << " outcome " << i;
  for (std::size_t k = 0; k < a.impacts.size(); ++k) {
    EXPECT_EQ(a.impacts[k].op_index, b.impacts[k].op_index) << label;
    EXPECT_EQ(a.impacts[k].tvd, b.impacts[k].tvd)
        << label << " gate " << k;
  }
}

void expect_stats_identical(const ex::BatchRunner::Stats& a,
                            const ex::BatchRunner::Stats& b,
                            const std::string& label) {
  EXPECT_EQ(a.jobs, b.jobs) << label;
  EXPECT_EQ(a.cache_hits, b.cache_hits) << label;
  EXPECT_EQ(a.checkpointed, b.checkpointed) << label;
  EXPECT_EQ(a.trajectory_checkpointed, b.trajectory_checkpointed) << label;
  EXPECT_EQ(a.full_runs, b.full_runs) << label;
  EXPECT_EQ(a.checkpoint_fallbacks, b.checkpoint_fallbacks) << label;
}

}  // namespace

TEST(DeterminismMatrix, ReportsBitIdenticalAcrossThreadCounts) {
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);

  struct Config {
    const char* name;
    co::CharterOptions options;
  };
  std::vector<Config> configs;
  {
    co::CharterOptions dm;
    dm.reversals = 2;
    dm.run.shots = 4096;
    dm.run.seed = 2022;
    configs.push_back({"dm_exact", dm});
    dm.run.opt = cn::OptLevel::kFused;
    configs.push_back({"dm_fused", dm});

    co::CharterOptions traj;
    traj.reversals = 2;
    traj.max_gates = 4;
    traj.run.shots = 512;
    traj.run.engine = cb::EngineKind::kTrajectory;
    traj.run.trajectories = 6;
    traj.run.seed = 3;
    configs.push_back({"trajectory_independent_seeds", traj});
    traj.common_random_numbers = true;
    configs.push_back({"trajectory_common_random_numbers", traj});
  }

  for (const Config& config : configs) {
    const MatrixRun base =
        analyze_at_width(backend, program, config.options, 1);
    EXPECT_EQ(base.cold_stats.cache_hits, 0u) << config.name;
    EXPECT_EQ(base.warm_stats.cache_hits, base.warm_stats.jobs)
        << config.name;
    for (const int threads : {2, 8}) {
      const MatrixRun wide =
          analyze_at_width(backend, program, config.options, threads);
      const std::string label =
          std::string(config.name) + " @" + std::to_string(threads);
      expect_reports_identical(base.cold_report, wide.cold_report,
                               label + " cold");
      expect_reports_identical(base.warm_report, wide.warm_report,
                               label + " warm");
      expect_stats_identical(base.cold_stats, wide.cold_stats,
                             label + " cold stats");
      expect_stats_identical(base.warm_stats, wide.warm_stats,
                             label + " warm stats");
    }
  }
}

TEST(DeterminismMatrix, ReportsBitIdenticalAcrossWorkerProcesses) {
  // The multi-process extension of the matrix above: the full report is
  // bit-identical whether shards run in-process or in 1/2/4 `charter
  // worker` children (plain-fork mode — worker_exe empty), because the
  // wire formats carry raw double bits and the reduction stays
  // submission-index-ordered.
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);

  struct Config {
    const char* name;
    co::CharterOptions options;
  };
  std::vector<Config> configs;
  {
    co::CharterOptions dm;
    dm.reversals = 2;
    dm.run.shots = 4096;
    dm.run.seed = 2022;
    configs.push_back({"dm_exact", dm});

    co::CharterOptions traj;
    traj.reversals = 2;
    traj.max_gates = 4;
    traj.run.shots = 512;
    traj.run.engine = cb::EngineKind::kTrajectory;
    traj.run.trajectories = 6;
    traj.run.seed = 3;
    configs.push_back({"trajectory_independent_seeds", traj});
  }

  for (const Config& config : configs) {
    const MatrixRun inproc =
        analyze_at_width(backend, program, config.options, 2);
    for (const int workers : {1, 2, 4}) {
      co::CharterOptions options = config.options;
      options.exec.workers = workers;
      const MatrixRun multi = analyze_at_width(backend, program, options, 2);
      const std::string label =
          std::string(config.name) + " workers=" + std::to_string(workers);
      expect_reports_identical(inproc.cold_report, multi.cold_report,
                               label + " cold");
      expect_reports_identical(inproc.warm_report, multi.warm_report,
                               label + " warm");
      expect_stats_identical(inproc.cold_stats, multi.cold_stats,
                             label + " cold stats");
      EXPECT_GT(multi.cold_stats.worker_jobs, 0u)
          << label << ": children served no work";
      EXPECT_EQ(multi.cold_stats.worker_failures, 0u) << label;
      // The warm run is all cache hits; no work reaches the children.
      EXPECT_EQ(multi.warm_stats.worker_jobs, 0u) << label;
    }
  }
}

TEST(MultiProcess, KilledWorkerShardIsRetriedInProcessUnchanged) {
  // Fault injection: every child SIGKILLs itself after serving one request
  // (CHARTER_WORKER_KILL_AFTER, inherited across fork).  The sweep must
  // detect the EOF, retry the dead workers' units in-process, and produce
  // the exact report an all-in-process run gives.
  const cb::FakeBackend backend = cb::FakeBackend::lagos(7);
  const cb::CompiledProgram program = compiled_program(backend, 2);
  const std::vector<std::size_t> eligible =
      co::reversible_ops(program.physical, true);
  ASSERT_GE(eligible.size(), 6u);
  const std::vector<std::size_t> gates(eligible.begin(), eligible.begin() + 6);

  cb::RunOptions run;
  run.shots = 1024;
  run.seed = 5;
  JobSet set = make_jobs(program, gates, run);

  ex::BatchOptions options;
  options.caching = false;
  const ex::BatchRunner baseline(backend, options);
  const std::vector<std::vector<double>> expected =
      baseline.run(set.jobs, &program);

  options.workers = 2;
  ::setenv("CHARTER_WORKER_KILL_AFTER", "1", 1);
  const ex::BatchRunner faulty(backend, options);
  const std::vector<std::vector<double>> got = faulty.run(set.jobs, &program);
  ::unsetenv("CHARTER_WORKER_KILL_AFTER");

  EXPECT_GE(faulty.last_stats().worker_failures, 1u)
      << "no child died; the fault injection did not fire";
  EXPECT_GE(faulty.last_stats().worker_retried_jobs, 1u);
  ASSERT_EQ(got.size(), expected.size());
  for (std::size_t k = 0; k < expected.size(); ++k) {
    ASSERT_EQ(got[k].size(), expected[k].size()) << "job " << k;
    for (std::size_t i = 0; i < expected[k].size(); ++i)
      EXPECT_EQ(got[k][i], expected[k][i]) << "job " << k << " outcome " << i;
  }
}
