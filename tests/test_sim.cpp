// Tests for the simulation engines: statevector correctness against known
// states, kernel-vs-matrix cross-checks, exact density-matrix channel
// behavior (fused forms vs generic Kraus), trajectory/density agreement, and
// measurement/readout utilities.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "sim/density_matrix.hpp"
#include "sim/kernels.hpp"
#include "sim/measurement.hpp"
#include "sim/statevector.hpp"
#include "sim/trajectory.hpp"
#include "stats/stats.hpp"
#include "util/rng.hpp"

namespace cc = charter::circ;
namespace cm = charter::math;
namespace cs = charter::sim;
using cc::GateKind;
using cm::cplx;
using cm::Mat2;

namespace {

/// Random basis-gate circuit over n qubits (RZ/SX/SXDG/X/CX).
cc::Circuit random_basis_circuit(int n, int num_gates,
                                 charter::util::Rng& rng) {
  cc::Circuit c(n);
  for (int i = 0; i < num_gates; ++i) {
    const int pick = static_cast<int>(rng.uniform_int(5));
    const int q = static_cast<int>(rng.uniform_int(n));
    switch (pick) {
      case 0:
        c.rz(q, rng.uniform(-M_PI, M_PI));
        break;
      case 1:
        c.sx(q);
        break;
      case 2:
        c.sxdg(q);
        break;
      case 3:
        c.x(q);
        break;
      default: {
        if (n < 2) {
          c.sx(q);
          break;
        }
        int q2 = static_cast<int>(rng.uniform_int(n));
        while (q2 == q) q2 = static_cast<int>(rng.uniform_int(n));
        c.cx(q, q2);
        break;
      }
    }
  }
  return c;
}

double dist(const std::vector<double>& a, const std::vector<double>& b) {
  return charter::stats::tvd(a, b);
}

}  // namespace

// ---- pair kernels ----

namespace {

/// Random normalized pseudo-state of the given dimension.
std::vector<cplx> random_state(std::uint64_t dim, charter::util::Rng& rng) {
  std::vector<cplx> a(dim);
  double norm = 0.0;
  for (cplx& v : a) {
    v = cplx(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    norm += std::norm(v);
  }
  const double inv = 1.0 / std::sqrt(norm);
  for (cplx& v : a) v *= inv;
  return a;
}

}  // namespace

TEST(PairKernels, Fused1qPairIsBitIdenticalToTwoPasses) {
  charter::util::Rng rng(2024);
  const std::uint64_t dim = 1ULL << 6;
  const Mat2 u = cc::gate_unitary_1q(cc::make_gate(GateKind::SX, {0}));
  Mat2 v = cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0}));
  v(0, 1) *= cplx(0.0, 1.0);  // any 2x2, unitarity not required
  for (const auto [qa, qb] : {std::pair{0, 3}, {3, 0}, {2, 5}, {4, 1}}) {
    std::vector<cplx> fused = random_state(dim, rng);
    std::vector<cplx> twopass = fused;
    cs::kernels::apply_1q_pair(fused.data(), dim, qa, u, qb, v);
    cs::kernels::apply_1q(twopass.data(), dim, qa, u);
    cs::kernels::apply_1q(twopass.data(), dim, qb, v);
    for (std::uint64_t i = 0; i < dim; ++i)
      ASSERT_EQ(fused[i], twopass[i]) << "qubits " << qa << "," << qb;
  }
}

TEST(PairKernels, FusedDiagPairsAreBitIdenticalToTwoPasses) {
  charter::util::Rng rng(7);
  const std::uint64_t dim = 1ULL << 6;
  const cplx d0 = std::exp(cplx(0.0, 0.3));
  const cplx d1 = std::exp(cplx(0.0, -0.3));
  const std::array<cplx, 4> zz = {std::exp(cplx(0.0, -0.01)),
                                  std::exp(cplx(0.0, 0.01)),
                                  std::exp(cplx(0.0, 0.01)),
                                  std::exp(cplx(0.0, -0.01))};
  std::vector<cplx> fused = random_state(dim, rng);
  std::vector<cplx> twopass = fused;
  cs::kernels::apply_diag_1q_pair(fused.data(), dim, 1, d0, d1, 4,
                                  std::conj(d0), std::conj(d1));
  cs::kernels::apply_diag_1q(twopass.data(), dim, 1, d0, d1);
  cs::kernels::apply_diag_1q(twopass.data(), dim, 4, std::conj(d0),
                             std::conj(d1));
  for (std::uint64_t i = 0; i < dim; ++i) ASSERT_EQ(fused[i], twopass[i]);

  fused = random_state(dim, rng);
  twopass = fused;
  cs::kernels::apply_diag_2q_pair(fused.data(), dim, 0, 2, zz, 3, 5, zz);
  cs::kernels::apply_diag_2q(twopass.data(), dim, 0, 2, zz);
  cs::kernels::apply_diag_2q(twopass.data(), dim, 3, 5, zz);
  for (std::uint64_t i = 0; i < dim; ++i) ASSERT_EQ(fused[i], twopass[i]);
}

TEST(PairKernels, FusedCxPairIsBitIdenticalToTwoPasses) {
  charter::util::Rng rng(99);
  const std::uint64_t dim = 1ULL << 6;
  for (const auto [c1, t1, c2, t2] :
       {std::array{0, 1, 3, 4}, {2, 0, 5, 3}, {1, 5, 4, 2}}) {
    std::vector<cplx> fused = random_state(dim, rng);
    std::vector<cplx> twopass = fused;
    cs::kernels::apply_cx_pair(fused.data(), dim, c1, t1, c2, t2);
    cs::kernels::apply_cx(twopass.data(), dim, c1, t1);
    cs::kernels::apply_cx(twopass.data(), dim, c2, t2);
    for (std::uint64_t i = 0; i < dim; ++i)
      ASSERT_EQ(fused[i], twopass[i]) << c1 << t1 << c2 << t2;
  }
}

// ---- statevector ----

TEST(Statevector, InitialState) {
  cs::Statevector sv(3);
  const auto p = sv.probabilities();
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  for (std::size_t i = 1; i < p.size(); ++i) EXPECT_DOUBLE_EQ(p[i], 0.0);
}

TEST(Statevector, XFlipsBit) {
  cs::Statevector sv(2);
  sv.apply(cc::make_gate(GateKind::X, {1}));
  EXPECT_NEAR(sv.probabilities()[2], 1.0, 1e-12);
}

TEST(Statevector, BellState) {
  cs::Statevector sv(2);
  cc::Circuit c(2);
  c.h(0).cx(0, 1);
  sv.apply(c);
  const auto p = sv.probabilities();
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[3], 0.5, 1e-12);
  EXPECT_NEAR(p[1] + p[2], 0.0, 1e-12);
}

TEST(Statevector, GhzState) {
  cc::Circuit c(4);
  c.h(0).cx(0, 1).cx(1, 2).cx(2, 3);
  const auto p = cs::ideal_probabilities(c);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[15], 0.5, 1e-12);
}

TEST(Statevector, SetBasisState) {
  cs::Statevector sv(3);
  sv.set_basis_state(5);
  EXPECT_NEAR(sv.probabilities()[5], 1.0, 1e-12);
  EXPECT_NEAR(sv.probability_one(0), 1.0, 1e-12);
  EXPECT_NEAR(sv.probability_one(1), 0.0, 1e-12);
  EXPECT_NEAR(sv.probability_one(2), 1.0, 1e-12);
}

TEST(Statevector, NormPreservedUnderRandomCircuits) {
  charter::util::Rng rng(3);
  for (int trial = 0; trial < 5; ++trial) {
    const cc::Circuit c = random_basis_circuit(4, 60, rng);
    cs::Statevector sv(4);
    sv.apply(c);
    EXPECT_NEAR(sv.norm_sq(), 1.0, 1e-10);
  }
}

TEST(Statevector, CircuitInverseRestoresState) {
  charter::util::Rng rng(4);
  for (int trial = 0; trial < 8; ++trial) {
    const cc::Circuit c = random_basis_circuit(4, 40, rng);
    cs::Statevector sv(4);
    sv.apply(c);
    sv.apply(c.inverse());
    EXPECT_NEAR(sv.probabilities()[0], 1.0, 1e-9);
  }
}

TEST(Statevector, CcxBehavesAsToffoli) {
  for (std::uint64_t in = 0; in < 8; ++in) {
    cs::Statevector sv(3);
    sv.set_basis_state(in);
    sv.apply(cc::make_gate(GateKind::CCX, {0, 1, 2}));
    const std::uint64_t want =
        ((in & 1) && (in & 2)) ? (in ^ 4) : in;
    EXPECT_NEAR(sv.probabilities()[want], 1.0, 1e-12) << "input " << in;
  }
}

TEST(Statevector, SwapGateExchangesBits) {
  cs::Statevector sv(2);
  sv.set_basis_state(1);  // |q1=0, q0=1>
  sv.apply(cc::make_gate(GateKind::SWAP, {0, 1}));
  EXPECT_NEAR(sv.probabilities()[2], 1.0, 1e-12);
}

// Property: special-cased kernels match the generic matrix path.
class TwoQubitKernelMatchesMatrix
    : public ::testing::TestWithParam<GateKind> {};

TEST_P(TwoQubitKernelMatchesMatrix, OnRandomStates) {
  charter::util::Rng rng(11);
  const GateKind kind = GetParam();
  for (int trial = 0; trial < 4; ++trial) {
    // Random-ish state via a scrambling circuit.
    const cc::Circuit scramble = random_basis_circuit(3, 25, rng);
    cs::Statevector a(3), b(3);
    a.apply(scramble);
    b.apply(scramble);

    cc::Gate g = cc::gate_param_count(kind) == 1
                     ? cc::make_gate(kind, {0, 2}, {rng.uniform(-2.0, 2.0)})
                     : cc::make_gate(kind, {0, 2});
    a.apply(g);
    b.apply_unitary_2q(cc::gate_unitary_2q(g), 0, 2);
    for (std::uint64_t i = 0; i < a.dim(); ++i)
      EXPECT_NEAR(std::abs(a.amplitudes()[i] - b.amplitudes()[i]), 0.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTwoQubitKinds, TwoQubitKernelMatchesMatrix,
                         ::testing::Values(GateKind::CX, GateKind::CZ,
                                           GateKind::CP, GateKind::CRZ,
                                           GateKind::SWAP, GateKind::RZZ,
                                           GateKind::RXX, GateKind::RYY),
                         [](const auto& info) {
                           return cc::gate_name(info.param);
                         });

// ---- density matrix ----

TEST(DensityMatrix, PureEvolutionMatchesStatevector) {
  charter::util::Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    const cc::Circuit c = random_basis_circuit(3, 30, rng);
    cs::Statevector sv(3);
    sv.apply(c);

    cs::DensityMatrixEngine dm(3);
    for (const cc::Gate& g : c.ops()) {
      switch (g.kind) {
        case GateKind::CX:
          dm.apply_cx(g.qubits[0], g.qubits[1]);
          break;
        case GateKind::RZ: {
          const cplx i(0.0, 1.0);
          dm.apply_diag_1q(std::exp(-i * (g.params[0] / 2.0)),
                           std::exp(i * (g.params[0] / 2.0)), g.qubits[0]);
          break;
        }
        default:
          dm.apply_unitary_1q(cc::gate_unitary_1q(g), g.qubits[0]);
      }
    }
    EXPECT_NEAR(dist(dm.probabilities(), sv.probabilities()), 0.0, 1e-10);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-10);
  }
}

TEST(DensityMatrix, FullAmplitudeDampingReachesGround) {
  cs::DensityMatrixEngine dm(2);
  dm.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0})),
                      0);
  dm.apply_thermal_relaxation(0, /*gamma=*/1.0, /*pz=*/0.0);
  const auto p = dm.probabilities();
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
}

TEST(DensityMatrix, PartialDampingMixesPopulations) {
  cs::DensityMatrixEngine dm(1);
  dm.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0})),
                      0);
  dm.apply_thermal_relaxation(0, 0.3, 0.0);
  const auto p = dm.probabilities();
  EXPECT_NEAR(p[0], 0.3, 1e-12);
  EXPECT_NEAR(p[1], 0.7, 1e-12);
}

TEST(DensityMatrix, DephasingKillsCoherence) {
  cs::DensityMatrixEngine dm(1);
  dm.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0})),
                      0);
  EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
  dm.apply_thermal_relaxation(0, 0.0, /*pz=*/0.5);  // complete dephasing
  EXPECT_NEAR(dm.purity(), 0.5, 1e-12);
  // Populations untouched.
  const auto p = dm.probabilities();
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(DensityMatrix, DepolarizingMatchesGenericKraus) {
  const double p = 0.1;
  charter::util::Rng rng(31);
  const cc::Circuit scramble = random_basis_circuit(3, 25, rng);

  cs::DensityMatrixEngine a(3), b(3);
  for (const cc::Gate& g : scramble.ops()) {
    if (g.kind == GateKind::CX) {
      a.apply_cx(g.qubits[0], g.qubits[1]);
      b.apply_cx(g.qubits[0], g.qubits[1]);
    } else {
      a.apply_unitary_1q(cc::gate_unitary_1q(g), g.qubits[0]);
      b.apply_unitary_1q(cc::gate_unitary_1q(g), g.qubits[0]);
    }
  }
  a.apply_depolarizing_1q(1, p);

  Mat2 k0 = cm::scale(Mat2::identity(), std::sqrt(1.0 - p));
  Mat2 kx, ky, kz;
  kx(0, 1) = kx(1, 0) = std::sqrt(p / 3.0);
  ky(0, 1) = cplx(0.0, -std::sqrt(p / 3.0));
  ky(1, 0) = cplx(0.0, std::sqrt(p / 3.0));
  kz(0, 0) = std::sqrt(p / 3.0);
  kz(1, 1) = -std::sqrt(p / 3.0);
  const std::vector<Mat2> kraus = {k0, kx, ky, kz};
  b.apply_kraus_1q(kraus, 1);

  for (std::size_t i = 0; i < a.raw().size(); ++i)
    EXPECT_NEAR(std::abs(a.raw()[i] - b.raw()[i]), 0.0, 1e-10);
}

TEST(DensityMatrix, ThermalRelaxationMatchesGenericKraus) {
  const double gamma = 0.2;
  cs::DensityMatrixEngine a(2), b(2);
  // Prepare |+>|1> so both coherence and population are exercised.
  a.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0})), 0);
  b.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0})), 0);
  a.apply_cx(0, 1);
  b.apply_cx(0, 1);

  a.apply_thermal_relaxation(0, gamma, 0.0);
  Mat2 k0, k1;
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - gamma);
  k1(0, 1) = std::sqrt(gamma);
  const std::vector<Mat2> kraus = {k0, k1};
  b.apply_kraus_1q(kraus, 0);

  for (std::size_t i = 0; i < a.raw().size(); ++i)
    EXPECT_NEAR(std::abs(a.raw()[i] - b.raw()[i]), 0.0, 1e-10);
}

TEST(DensityMatrix, TwoQubitDepolarizingFullyMixes) {
  cs::DensityMatrixEngine dm(2);
  dm.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0})),
                      0);
  dm.apply_cx(0, 1);
  // p = 15/16 makes the channel the complete twirl.
  dm.apply_depolarizing_2q(0, 1, 15.0 / 16.0);
  const auto p = dm.probabilities();
  for (const double v : p) EXPECT_NEAR(v, 0.25, 1e-10);
  EXPECT_NEAR(dm.purity(), 0.25, 1e-10);
}

TEST(DensityMatrix, BitflipIsExact) {
  cs::DensityMatrixEngine dm(1);
  dm.apply_bitflip(0, 0.25);
  const auto p = dm.probabilities();
  EXPECT_NEAR(p[1], 0.25, 1e-12);
  EXPECT_NEAR(p[0], 0.75, 1e-12);
}

TEST(DensityMatrix, ChannelsPreserveTrace) {
  charter::util::Rng rng(41);
  cs::DensityMatrixEngine dm(3);
  const cc::Circuit scramble = random_basis_circuit(3, 20, rng);
  for (const cc::Gate& g : scramble.ops()) {
    if (g.kind == GateKind::CX)
      dm.apply_cx(g.qubits[0], g.qubits[1]);
    else
      dm.apply_unitary_1q(cc::gate_unitary_1q(g), g.qubits[0]);
  }
  dm.apply_depolarizing_1q(0, 0.05);
  dm.apply_depolarizing_2q(1, 2, 0.1);
  dm.apply_thermal_relaxation(2, 0.07, 0.02);
  dm.apply_bitflip(1, 0.03);
  EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
  const auto p = dm.probabilities();
  for (const double v : p) EXPECT_GE(v, -1e-12);
}

// ---- trajectory engine ----

TEST(Trajectory, NoiselessMatchesStatevector) {
  charter::util::Rng rng(51);
  const cc::Circuit c = random_basis_circuit(4, 40, rng);
  cs::Statevector sv(4);
  sv.apply(c);

  const auto probs = cs::run_trajectories(
      4, 3, 99, [&](cs::NoisyEngine& eng) {
        for (const cc::Gate& g : c.ops()) {
          if (g.kind == GateKind::CX) {
            eng.apply_cx(g.qubits[0], g.qubits[1]);
          } else if (g.kind == GateKind::RZ) {
            const cplx i(0.0, 1.0);
            eng.apply_diag_1q(std::exp(-i * (g.params[0] / 2.0)),
                              std::exp(i * (g.params[0] / 2.0)), g.qubits[0]);
          } else {
            eng.apply_unitary_1q(cc::gate_unitary_1q(g), g.qubits[0]);
          }
        }
      });
  EXPECT_NEAR(dist(probs, sv.probabilities()), 0.0, 1e-10);
}

TEST(Trajectory, DeterministicInSeed) {
  const auto program = [](cs::NoisyEngine& eng) {
    eng.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0})),
                         0);
    eng.apply_cx(0, 1);
    eng.apply_depolarizing_1q(0, 0.2);
    eng.apply_thermal_relaxation(1, 0.3, 0.1);
  };
  const auto p1 = cs::run_trajectories(2, 32, 7, program);
  const auto p2 = cs::run_trajectories(2, 32, 7, program);
  EXPECT_EQ(p1, p2);
  const auto p3 = cs::run_trajectories(2, 32, 8, program);
  EXPECT_NE(p1, p3);
}

TEST(Trajectory, ConvergesToDensityMatrix) {
  // A noisy GHZ preparation: compare 4000 trajectories to the exact DM.
  const auto program = [](cs::NoisyEngine& eng) {
    eng.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::H, {0})),
                         0);
    eng.apply_depolarizing_1q(0, 0.1);
    eng.apply_cx(0, 1);
    eng.apply_depolarizing_2q(0, 1, 0.15);
    eng.apply_cx(1, 2);
    eng.apply_thermal_relaxation(2, 0.2, 0.05);
    eng.apply_bitflip(1, 0.05);
  };
  cs::DensityMatrixEngine dm(3);
  program(dm);
  const auto p_dm = dm.probabilities();
  const auto p_mc = cs::run_trajectories(3, 4000, 13, program);
  EXPECT_LT(dist(p_mc, p_dm), 0.02);
}

TEST(Trajectory, DampingJumpStatistics) {
  // |1> under gamma=0.4: P(0) = 0.4 across trajectories.
  const auto program = [](cs::NoisyEngine& eng) {
    eng.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0})),
                         0);
    eng.apply_thermal_relaxation(0, 0.4, 0.0);
  };
  const auto p = cs::run_trajectories(1, 4000, 17, program);
  EXPECT_NEAR(p[0], 0.4, 0.03);
}

TEST(Trajectory, GenericKrausSampling) {
  // Amplitude damping via the generic interface matches the closed form.
  const double gamma = 0.35;
  Mat2 k0, k1;
  k0(0, 0) = 1.0;
  k0(1, 1) = std::sqrt(1.0 - gamma);
  k1(0, 1) = std::sqrt(gamma);
  const auto program = [&](cs::NoisyEngine& eng) {
    eng.apply_unitary_1q(cc::gate_unitary_1q(cc::make_gate(GateKind::X, {0})),
                         0);
    const std::vector<Mat2> kraus = {k0, k1};
    eng.apply_kraus_1q(kraus, 0);
  };
  const auto p = cs::run_trajectories(1, 4000, 19, program);
  EXPECT_NEAR(p[0], gamma, 0.03);
}

// ---- measurement utilities ----

TEST(Measurement, ReadoutConfusionSingleQubit) {
  std::vector<double> probs = {1.0, 0.0};
  cs::apply_readout_error(probs, {{0.1, 0.2}});
  EXPECT_NEAR(probs[0], 0.9, 1e-12);
  EXPECT_NEAR(probs[1], 0.1, 1e-12);

  probs = {0.0, 1.0};
  cs::apply_readout_error(probs, {{0.1, 0.2}});
  EXPECT_NEAR(probs[0], 0.2, 1e-12);
  EXPECT_NEAR(probs[1], 0.8, 1e-12);
}

TEST(Measurement, ReadoutPreservesTotalProbability) {
  std::vector<double> probs = {0.1, 0.2, 0.3, 0.4};
  cs::apply_readout_error(probs, {{0.02, 0.05}, {0.01, 0.08}});
  double total = 0.0;
  for (const double v : probs) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Measurement, SampleCountsMatchDistribution) {
  charter::util::Rng rng(61);
  const std::vector<double> probs = {0.5, 0.25, 0.125, 0.125};
  const auto counts = cs::sample_counts(probs, 100000, rng);
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  EXPECT_EQ(total, 100000u);
  EXPECT_NEAR(static_cast<double>(counts[0]) / 100000.0, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(counts[3]) / 100000.0, 0.125, 0.01);
}

TEST(Measurement, CountsToDistributionNormalizes) {
  const std::vector<std::uint64_t> counts = {10, 30, 40, 20};
  const auto p = cs::counts_to_distribution(counts);
  EXPECT_DOUBLE_EQ(p[1], 0.3);
  EXPECT_DOUBLE_EQ(p[2], 0.4);
}

TEST(Measurement, BitstringRendering) {
  EXPECT_EQ(cs::bitstring(5, 3), "101");
  EXPECT_EQ(cs::bitstring(0, 4), "0000");
  EXPECT_EQ(cs::bitstring(8, 4), "1000");
}
