// Unit tests for the util library: RNG determinism and distributions, the
// parallel loop helpers, the exec worker pool, CLI parsing, table rendering,
// and the CSV cache.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace cu = charter::util;

TEST(Rng, SameSeedSameStream) {
  cu::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  cu::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  cu::Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  cu::Rng rng(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeWithoutBias) {
  cu::Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.uniform_int(10)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.15);
}

TEST(Rng, NormalMomentsMatch) {
  cu::Rng rng(17);
  double sum = 0.0, sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalWithParamsScales) {
  cu::Rng rng(19);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.normal(3.0, 0.5);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(Rng, BernoulliFrequency) {
  cu::Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, SplitStreamsIndependentAndDeterministic) {
  cu::Rng parent(99);
  cu::Rng c1 = parent.split(0);
  cu::Rng c2 = parent.split(1);
  cu::Rng c1_again = parent.split(0);
  EXPECT_EQ(c1.next_u64(), c1_again.next_u64());
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 32; ++i) {
    seen.insert(c1.next_u64());
    seen.insert(c2.next_u64());
  }
  EXPECT_GT(seen.size(), 60u);  // no collisions expected
}

TEST(Parallel, ForCoversAllIndices) {
  std::vector<int> hits(10000, 0);
  cu::parallel_for(10000, [&](std::int64_t i) { hits[i] += 1; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(Parallel, SumMatchesSerial) {
  const std::int64_t n = 100000;
  const double got = cu::parallel_sum(n, [](std::int64_t i) {
    return 1.0 / ((i + 1.0) * (i + 1.0));
  });
  double want = 0.0;
  for (std::int64_t i = 0; i < n; ++i) want += 1.0 / ((i + 1.0) * (i + 1.0));
  EXPECT_NEAR(got, want, 1e-9);
}

TEST(Parallel, SmallLoopStaysCorrect) {
  double total = cu::parallel_sum(3, [](std::int64_t i) { return i * 1.0; });
  EXPECT_DOUBLE_EQ(total, 3.0);
}

TEST(Cli, ParsesTypedFlags) {
  cu::Cli cli("test");
  cli.add_flag("name", std::string("qft"), "algo name");
  cli.add_flag("shots", std::int64_t{100}, "shot count");
  cli.add_flag("scale", 1.5, "scale factor");
  cli.add_flag("full", false, "full mode");
  const char* argv[] = {"prog", "--name=adder", "--shots", "32000",
                        "--scale=2.5", "--full"};
  ASSERT_TRUE(cli.parse(6, argv));
  EXPECT_EQ(cli.get_string("name"), "adder");
  EXPECT_EQ(cli.get_int("shots"), 32000);
  EXPECT_DOUBLE_EQ(cli.get_double("scale"), 2.5);
  EXPECT_TRUE(cli.get_bool("full"));
}

TEST(Cli, DefaultsSurviveParse) {
  cu::Cli cli("test");
  cli.add_flag("shots", std::int64_t{4096}, "shot count");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(cli.get_int("shots"), 4096);
}

TEST(Cli, UnknownFlagThrows) {
  cu::Cli cli("test");
  const char* argv[] = {"prog", "--nope=1"};
  EXPECT_THROW(cli.parse(2, argv), charter::InvalidArgument);
}

TEST(Cli, MalformedIntThrows) {
  cu::Cli cli("test");
  cli.add_flag("shots", std::int64_t{1}, "shots");
  const char* argv[] = {"prog", "--shots=abc"};
  EXPECT_THROW(cli.parse(2, argv), charter::InvalidArgument);
}

TEST(Cli, BenchmarkFlagsPassThrough) {
  cu::Cli cli("test");
  const char* argv[] = {"prog", "--benchmark_filter=all"};
  EXPECT_TRUE(cli.parse(2, argv));
}

TEST(Table, RendersAlignedColumns) {
  cu::Table t("Caption");
  t.set_header({"Algorithm", "Corr."});
  t.add_row({"QFT (3)", "0.99"});
  t.add_row({"Adder (4)", "0.98"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Caption"), std::string::npos);
  EXPECT_NE(out.find("Algorithm"), std::string::npos);
  EXPECT_NE(out.find("QFT (3)   | 0.99"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  cu::Table t;
  t.set_header({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), charter::InvalidArgument);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(cu::Table::fmt(0.4567, 2), "0.46");
  EXPECT_EQ(cu::Table::fmt_percent(0.42), "42%");
  EXPECT_EQ(cu::Table::fmt_pvalue(0.26), "0.26");
  const std::string p = cu::Table::fmt_pvalue(3.78e-24);
  EXPECT_NE(p.find("e-24"), std::string::npos);
}

TEST(Csv, RoundTrips) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "charter_csv_test.csv")
          .string();
  cu::write_csv(path, {"algo", "tvd"}, {{"qft", "0.25"}, {"adder", "0.5"}});
  const cu::CsvDocument doc = cu::read_csv(path);
  ASSERT_EQ(doc.header.size(), 2u);
  ASSERT_EQ(doc.rows.size(), 2u);
  EXPECT_EQ(doc.rows[1][doc.column("algo")], "adder");
  EXPECT_EQ(doc.rows[0][doc.column("tvd")], "0.25");
  std::filesystem::remove(path);
}

TEST(Csv, MissingFileThrowsNotFound) {
  EXPECT_THROW(cu::read_csv("/nonexistent/charter.csv"), charter::NotFound);
}

TEST(Csv, MissingColumnThrows) {
  cu::CsvDocument doc;
  doc.header = {"a"};
  EXPECT_THROW(doc.column("b"), charter::NotFound);
}

TEST(Timer, MeasuresElapsedTime) {
  cu::Timer t;
  volatile double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink = sink + std::sqrt(i * 1.0);
  EXPECT_GE(t.seconds(), 0.0);
  t.reset();
  EXPECT_LT(t.seconds(), 1.0);
}

TEST(Error, RequireThrowsWithMessage) {
  try {
    charter::require(false, "broken precondition");
    FAIL() << "expected throw";
  } catch (const charter::InvalidArgument& e) {
    EXPECT_NE(std::string(e.what()).find("broken"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Worker pool
// ---------------------------------------------------------------------------

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  for (const int workers : {1, 2, 8}) {
    cu::ThreadPool pool(workers);
    EXPECT_EQ(pool.num_workers(), workers);
    std::vector<std::atomic<int>> hits(257);
    for (auto& h : hits) h = 0;
    pool.run(257, [&](std::int64_t i, int worker) {
      ASSERT_GE(worker, 0);
      ASSERT_LT(worker, workers);
      ++hits[static_cast<std::size_t>(i)];
    });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossRuns) {
  cu::ThreadPool pool(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::int64_t> sum{0};
    pool.run(round, [&](std::int64_t i, int) { sum += i; });
    EXPECT_EQ(sum.load(), round * (round - 1) / 2);
  }
}

TEST(ThreadPool, MarksWorkersAndForcesNestedHelpersSerial) {
  EXPECT_FALSE(cu::in_pool_worker());
  cu::ThreadPool pool(3);
  std::atomic<int> on_worker{0};
  pool.run(8, [&](std::int64_t, int) {
    if (cu::in_pool_worker()) ++on_worker;
  });
  EXPECT_EQ(on_worker.load(), 8);
  EXPECT_FALSE(cu::in_pool_worker());  // only the workers are marked
}

TEST(ThreadPool, NestedRunFallsBackToInlineSerial) {
  cu::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.run(3, [&](std::int64_t, int) {
    // From a task body the pool is busy; a nested run() must not deadlock.
    pool.run(5, [&](std::int64_t, int worker) {
      EXPECT_EQ(worker, 0);
      ++inner_total;
    });
  });
  EXPECT_EQ(inner_total.load(), 15);
}

TEST(ThreadPool, FirstExceptionPropagatesAfterDrain) {
  cu::ThreadPool pool(4);
  std::atomic<int> completed{0};
  try {
    pool.run(64, [&](std::int64_t i, int) {
      if (i == 13) throw std::runtime_error("task 13 failed");
      ++completed;
    });
    FAIL() << "expected throw";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("task 13"), std::string::npos);
  }
  EXPECT_EQ(completed.load(), 63);  // the batch drains; one task threw
  // The pool survives a failed batch.
  std::atomic<int> after{0};
  pool.run(4, [&](std::int64_t, int) { ++after; });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPool, ResolveThreadsHonorsExplicitAndAuto) {
  EXPECT_EQ(cu::resolve_threads(1), 1);
  EXPECT_EQ(cu::resolve_threads(7), 7);
  EXPECT_GE(cu::resolve_threads(0), 1);  // auto: at least one worker
}
