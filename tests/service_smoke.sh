#!/usr/bin/env bash
# End-to-end daemon smoke test, run by CTest as `service_smoke`.
#
# Drives the real charterd binary with the real `charter client` over an
# AF_UNIX socket and checks the contract the unit tests cannot: a cold
# daemon simulates, a *restarted* daemon with the same --cache-dir serves
# the same submission entirely from the disk tier (zero new simulations),
# and both shutdown paths (`charter client shutdown`, SIGTERM) drain
# cleanly.
#
# Required environment: CHARTERD_BIN and CHARTER_BIN point at the built
# binaries (CMake passes $<TARGET_FILE:...>).

set -u

: "${CHARTERD_BIN:?set CHARTERD_BIN to the charterd binary}"
: "${CHARTER_BIN:?set CHARTER_BIN to the charter CLI binary}"

# Scratch under a fixed short /tmp prefix — NOT $TMPDIR: CTest build trees
# can nest deeply enough that "$TMPDIR/.../charterd.sock" blows the 107-byte
# AF_UNIX sun_path limit, which the daemon now rejects up front.
WORK="$(mktemp -d "/tmp/charter_smoke.XXXXXX")"
SOCK="$WORK/charterd.sock"
CACHE="$WORK/cache"
LOG="$WORK/charterd.log"
DAEMON_PID=""

fail() {
  echo "service_smoke: FAIL: $*" >&2
  echo "--- daemon log ---" >&2
  cat "$LOG" >&2 || true
  exit 1
}

cleanup() {
  if [ -n "$DAEMON_PID" ] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null
    wait "$DAEMON_PID" 2>/dev/null
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

client() {
  "$CHARTER_BIN" client "$@" --socket "$SOCK"
}

start_daemon() {
  "$CHARTERD_BIN" --socket "$SOCK" --backend lagos --threads 2 \
    --cache-dir "$CACHE" --shots 2048 --seed 7 --reversals 3 \
    >>"$LOG" 2>&1 &
  DAEMON_PID=$!
  # The socket appears once the listener is up; pings may still race the
  # bind, so poll.
  for _ in $(seq 1 100); do
    if client ping >/dev/null 2>&1; then return 0; fi
    kill -0 "$DAEMON_PID" 2>/dev/null || fail "daemon died during startup"
    sleep 0.1
  done
  fail "daemon never answered ping on $SOCK"
}

await_daemon_exit() {
  wait "$DAEMON_PID"
  local status=$?
  DAEMON_PID=""
  [ "$status" -eq 0 ] || fail "daemon exited with status $status"
}

# --- cold daemon: submit simulates, report fetches ---------------------------
start_daemon

client ping | grep -q '"pong":true' || fail "ping did not pong"
client submit --algo qft3 --wait >/dev/null || fail "cold submit failed"

COLD="$(client fetch --job 1)" || fail "cold fetch failed"
echo "$COLD" | grep -q '"status":"done"' || fail "cold job not done"
echo "$COLD" | grep -q '"schema":' || fail "fetch did not embed a report"
echo "$COLD" | grep -q '"cache_hits":0' \
  || fail "cold run hit the cache; the cache cannot be cold"

# "Zero new simulations": every execution path that touches the simulator
# (full runs and both checkpoint plans) must count zero.
all_cached() {
  echo "$1" | grep -q '"full_runs":0' &&
    echo "$1" | grep -q '"checkpointed":0' &&
    echo "$1" | grep -q '"trajectory_checkpointed":0' &&
    ! echo "$1" | grep -q '"cache_hits":0'
}

# A same-process resubmission is served by the in-memory tier.
client submit --algo qft3 --wait >/dev/null || fail "warm submit failed"
WARM_MEM="$(client fetch --job 2)" || fail "warm fetch failed"
all_cached "$WARM_MEM" || fail "same-process resubmission still simulated"
echo "$WARM_MEM" | grep -q '"cache_memory_hits":0' \
  && fail "same-process resubmission bypassed the memory tier"

client stats | grep -q '"disk":' || fail "stats missing the disk tier"

# --- graceful shutdown over the wire -----------------------------------------
client shutdown | grep -q '"draining":true' || fail "shutdown not acknowledged"
await_daemon_exit
grep -q "drained, exiting" "$LOG" || fail "first daemon did not drain"

# --- restarted daemon: the disk tier survives the process --------------------
start_daemon
client submit --algo qft3 --wait >/dev/null || fail "post-restart submit failed"
DISK="$(client fetch --job 1)" || fail "post-restart fetch failed"
all_cached "$DISK" \
  || fail "restarted daemon re-simulated despite a warm disk cache"
echo "$DISK" | grep -q '"cache_disk_hits":0' \
  && fail "restarted daemon did not hit the disk tier"

# Warm and cold reports agree on the analysis itself.
cold_impacts="$(echo "$COLD" | sed 's/.*"impacts":\[\([^]]*\)\].*/\1/')"
disk_impacts="$(echo "$DISK" | sed 's/.*"impacts":\[\([^]]*\)\].*/\1/')"
[ -n "$cold_impacts" ] || fail "could not extract impacts from the cold report"
[ "$cold_impacts" = "$disk_impacts" ] \
  || fail "disk-served report differs from the cold report"

# --- SIGTERM drains too ------------------------------------------------------
kill -TERM "$DAEMON_PID"
await_daemon_exit
grep -c "drained, exiting" "$LOG" | grep -q '^2$' \
  || fail "SIGTERM did not drain the second daemon"

ls "$CACHE"/*.chd >/dev/null 2>&1 || fail "no cache entries on disk"

echo "service_smoke: PASS"
