// Tests for the bench infrastructure: flag parsing, quick-mode policies,
// and the impact-sweep CSV cache round trip.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include "common.hpp"

namespace cb = charter::bench;
namespace co = charter::core;

TEST(BenchContext, DefaultsAreQuickMode) {
  const char* argv[] = {"bench"};
  const auto ctx = cb::BenchContext::create("t", 1, argv);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_FALSE(ctx->full());
  EXPECT_EQ(ctx->shots(), 8192);
  EXPECT_EQ(ctx->reversals(), 5);
  EXPECT_GT(ctx->gate_cap(10), 0);
  EXPECT_GT(ctx->gate_cap(4), ctx->gate_cap(10));
}

TEST(BenchContext, FullModeLiftsCaps) {
  const char* argv[] = {"bench", "--full"};
  const auto ctx = cb::BenchContext::create("t", 2, argv);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_TRUE(ctx->full());
  EXPECT_EQ(ctx->shots(), 32000);
  EXPECT_EQ(ctx->gate_cap(16), 0);
  EXPECT_GT(ctx->trajectories(16), ctx->trajectories(16) / 2);
}

TEST(BenchContext, ExplicitShotsOverrideMode) {
  const char* argv[] = {"bench", "--full", "--shots=1234"};
  const auto ctx = cb::BenchContext::create("t", 3, argv);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_EQ(ctx->shots(), 1234);
}

TEST(BenchContext, BackendAssignmentRule) {
  const char* argv[] = {"bench"};
  const auto ctx = cb::BenchContext::create("t", 1, argv);
  const auto small = charter::algos::find_benchmark("qft3");
  const auto large = charter::algos::find_benchmark("tfim8");
  EXPECT_EQ(ctx->backend_for(small).name(), "ibm_lagos");
  EXPECT_EQ(ctx->backend_for(large).name(), "ibmq_guadalupe");
}

TEST(BenchContext, EmptyCacheDirDisablesCaching) {
  // --cache-dir "" mirrors --out "": an empty path must never create files.
  const char* argv[] = {"bench", "--cache-dir="};
  const auto ctx = cb::BenchContext::create("t", 2, argv);
  ASSERT_TRUE(ctx.has_value());
  EXPECT_FALSE(ctx->cache_enabled());

  const char* argv2[] = {"bench"};
  const auto ctx2 = cb::BenchContext::create("t", 1, argv2);
  EXPECT_TRUE(ctx2->cache_enabled());
}

TEST(BenchOutput, EmptyPathIsStdoutOnly) {
  // The shared --out helper: "" writes nothing and reports false.
  EXPECT_FALSE(cb::write_output_file("", "{\"k\": 1}\n"));
}

TEST(BenchOutput, WritesFileAndCreatesParentDirectory) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "charter_bench_out_test";
  std::filesystem::remove_all(dir);
  const std::string path = (dir / "nested" / "result.json").string();
  EXPECT_TRUE(cb::write_output_file(path, "{\"k\": 2}\n"));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, "{\"k\": 2}\n");
  std::filesystem::remove_all(dir);
}

TEST(BenchOutput, UnwritablePathReturnsFalse) {
  EXPECT_FALSE(cb::write_output_file("/proc/definitely/not/writable.json",
                                     "{}\n"));
}

TEST(BenchCache, ReportRoundTrips) {
  co::CharterReport report;
  co::GateImpact g;
  g.op_index = 17;
  g.kind = charter::circ::GateKind::CX;
  g.qubits = {3, 5, -1};
  g.num_qubits = 2;
  g.layer = 9;
  g.tvd = 0.123456789;
  g.tvd_vs_ideal = 0.87654321;
  report.impacts.push_back(g);
  g.op_index = 2;
  g.kind = charter::circ::GateKind::SX;
  g.qubits = {1, -1, -1};
  g.num_qubits = 1;
  g.layer = 0;
  g.tvd = 0.01;
  g.tvd_vs_ideal = 0.5;
  report.impacts.push_back(g);
  report.total_gates = 40;
  report.eligible_gates = 22;

  const std::string path =
      (std::filesystem::temp_directory_path() / "charter_report_test.csv")
          .string();
  cb::save_report(path, report);
  const co::CharterReport loaded = cb::load_report(path);
  std::filesystem::remove(path);

  ASSERT_EQ(loaded.impacts.size(), 2u);
  EXPECT_EQ(loaded.impacts[0].op_index, 17u);
  EXPECT_EQ(loaded.impacts[0].kind, charter::circ::GateKind::CX);
  EXPECT_EQ(loaded.impacts[0].qubits[1], 5);
  EXPECT_EQ(loaded.impacts[0].layer, 9);
  EXPECT_NEAR(loaded.impacts[0].tvd, 0.123456789, 1e-8);
  EXPECT_NEAR(loaded.impacts[1].tvd_vs_ideal, 0.5, 1e-8);
  EXPECT_EQ(loaded.total_gates, 40u);
  EXPECT_EQ(loaded.eligible_gates, 22u);
  EXPECT_EQ(loaded.analyzed_gates, 2u);
}

TEST(BenchCache, LoadedAnalyticsMatchOriginal) {
  // The derived statistics must be computable from a cache hit.
  co::CharterReport report;
  for (int i = 0; i < 8; ++i) {
    co::GateImpact g;
    g.op_index = static_cast<std::size_t>(i);
    g.kind = i % 2 ? charter::circ::GateKind::CX
                   : charter::circ::GateKind::SX;
    g.qubits = {static_cast<std::int16_t>(i % 3),
                static_cast<std::int16_t>(i % 2 ? (i % 3 + 1) % 3 : -1), -1};
    g.num_qubits = i % 2 ? 2 : 1;
    g.layer = i;
    g.tvd = 0.1 * (i + 1);
    g.tvd_vs_ideal = 0.05 * (i + 1);
    report.impacts.push_back(g);
  }
  const std::string path =
      (std::filesystem::temp_directory_path() / "charter_report_test2.csv")
          .string();
  cb::save_report(path, report);
  const co::CharterReport loaded = cb::load_report(path);
  std::filesystem::remove(path);

  EXPECT_NEAR(loaded.layer_correlation().r, report.layer_correlation().r,
              1e-7);
  EXPECT_NEAR(loaded.validation_correlation().r,
              report.validation_correlation().r, 1e-7);
  EXPECT_NEAR(loaded.qubit_coverage(0.25, 3), report.qubit_coverage(0.25, 3),
              1e-12);
}
