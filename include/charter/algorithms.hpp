#pragma once

/// \file charter/algorithms.hpp
/// Public module header: the paper's benchmark algorithm registry
/// (namespace charter::algos) — QFT, VQE ansätze, TFIM Trotterization,
/// the Cuccaro adder, and the keyed lookup used by the CLI.

#include "algos/algorithms.hpp"
#include "algos/registry.hpp"
