#pragma once

/// \file charter/exec.hpp
/// Public module header: the batched execution layer (namespace
/// charter::exec) — BatchRunner, run caching, the strategy portfolio
/// (StrategyKind, StrategyPlanner, the online cost model), and the
/// per-run stats carried by every CharterReport.  Most callers never
/// touch this directly; charter::Session drives it — select a strategy
/// with SessionConfig::execution().strategy(...) and read the outcome
/// from CharterReport::exec_stats.

#include "exec/batch.hpp"
#include "exec/cache.hpp"
#include "exec/strategy.hpp"

namespace charter::exec {

/// The execution diagnostics every CharterReport carries
/// (CharterReport::exec_stats): cache-tier hits, checkpoint vs full runs,
/// per-strategy job classification (ExecStats::strategy_jobs), the cost
/// model's predicted-vs-actual nanoseconds, and adaptive early-termination
/// savings (trajectories_executed vs trajectories_budgeted).
using ExecStats = BatchRunner::Stats;

}  // namespace charter::exec
