#pragma once

/// \file charter/exec.hpp
/// Public module header: the batched execution layer (namespace
/// charter::exec) — BatchRunner, run caching, and the per-run stats
/// carried by every CharterReport.  Most callers never touch this
/// directly; charter::Session drives it.

#include "exec/batch.hpp"
#include "exec/cache.hpp"
