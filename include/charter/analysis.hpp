#pragma once

/// \file charter/analysis.hpp
/// Public module header: the CHARTER analysis pipeline (namespace
/// charter::core) — per-gate criticality reports, gate reversal, the
/// calibration-only baseline, selective-serialization mitigation, and
/// report JSON round-tripping.

#include "core/analyzer.hpp"
#include "core/baseline.hpp"
#include "core/mitigation.hpp"
#include "core/report_io.hpp"
#include "core/reversal.hpp"
