#pragma once

/// \file charter/circuit.hpp
/// Public module header: circuit construction, printing, scheduling, and
/// OpenQASM 2.0 import/export (namespace charter::circ).

#include "circuit/circuit.hpp"
#include "circuit/gate.hpp"
#include "circuit/print.hpp"
#include "circuit/qasm_parser.hpp"
#include "circuit/schedule.hpp"
