#pragma once

/// \file charter/charter.hpp
/// Umbrella header for the charter public API.
///
/// Most programs only need this plus the Session quickstart:
///
///   #include <charter/charter.hpp>
///
///   const auto backend = charter::backend::FakeBackend::lagos();
///   charter::Session session(backend, charter::SessionConfig().shots(8192));
///   const auto program = session.compile(circuit);
///   const auto report = session.analyze(program);
///
/// Per-module headers (<charter/session.hpp>, <charter/circuit.hpp>, ...)
/// are available for finer-grained includes.

#include "charter/algorithms.hpp"
#include "charter/analysis.hpp"
#include "charter/backend.hpp"
#include "charter/circuit.hpp"
#include "charter/error.hpp"
#include "charter/exec.hpp"
#include "charter/noise.hpp"
#include "charter/session.hpp"
#include "charter/transpile.hpp"
#include "charter/version.hpp"
