#pragma once

/// \file charter/noise.hpp
/// Public module header: noise models and seeded calibration generation
/// (namespace charter::noise) for custom devices.

#include "noise/calibration.hpp"
#include "noise/noise_model.hpp"
