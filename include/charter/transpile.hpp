#pragma once

/// \file charter/transpile.hpp
/// Public module header: device topologies and the transpiler (namespace
/// charter::transpile) — basis decomposition, routing, noise-aware
/// layout.

#include "transpile/decompose.hpp"
#include "transpile/passes.hpp"
#include "transpile/routing.hpp"
#include "transpile/topology.hpp"
#include "transpile/transpiler.hpp"
