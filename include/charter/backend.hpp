#pragma once

/// \file charter/backend.hpp
/// Public module header: the abstract backend::Backend device interface,
/// the FakeBackend reference implementation (the paper's fake IBM Q
/// devices), and the run/compile option structs.

#include "backend/backend.hpp"
