#pragma once

/// \file charter/session.hpp
/// The public charter facade: a Session owns a device (any
/// backend::Backend) plus a validated SessionConfig and serves analysis
/// *jobs* — submit() returns immediately with a JobHandle carrying
/// progress callbacks, streamed per-gate impacts, cooperative
/// cancellation, and a future-style wait() for the finished
/// core::CharterReport.
///
/// The facade adds service semantics, never numerics: a Session report is
/// bit-identical to driving core::CharterAnalyzer directly with the same
/// configuration, at every worker-pool width.
///
/// Quickstart:
///
///   const auto backend = charter::backend::FakeBackend::lagos();
///   charter::Session session(
///       backend, charter::SessionConfig().shots(8192).seed(42));
///   const auto program = session.compile(circuit);
///   charter::JobHandle job = session.submit(program);
///   const charter::JobResult& done = job.wait();   // done.report
///
/// Jobs execute in submission order on one session worker thread; each
/// job's sweep fans out across its own exec-layer worker pool sized by
/// SessionConfig::threads.  JobHandles are cheap shared references: they
/// stay valid after the Session is destroyed (the destructor cancels
/// queued jobs, flags the running one, and joins).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/backend.hpp"
#include "characterize/characterize.hpp"
#include "core/analyzer.hpp"
#include "exec/cache.hpp"
#include "exec/strategy.hpp"
#include "util/thread_pool.hpp"

namespace charter {

/// Builder-style *execution* configuration: every knob that shapes how a
/// sweep runs (parallelism, caching, checkpointing, tape optimization, and
/// the strategy portfolio) without changing what it computes.  Lives inside
/// SessionConfig as SessionConfig::execution(); the old flat SessionConfig
/// setters forward here and are deprecated.
///
///   charter::SessionConfig cfg;
///   cfg.shots(8192).seed(42);
///   cfg.execution()
///       .threads(8)
///       .strategy(charter::exec::StrategyKind::kAuto)
///       .cost_profile("charter.costs.json");
///
/// Validation happens through SessionConfig::validate() — ExecutionConfig
/// carries no invariants of its own beyond what the session checks.
class ExecutionConfig {
 public:
  // -- parallelism --------------------------------------------------------
  /// Worker-pool width per job sweep: 0 = one worker per hardware thread.
  /// Results are bit-identical at every value; only wall-clock changes.
  ExecutionConfig& threads(int n) { threads_ = n; return *this; }
  /// Multi-process sweep sharding: > 0 fans each sweep's checkpoint shards
  /// and trajectory groups out to that many `charter worker` child
  /// processes over serialized tapes/snapshots.  0 (default) keeps
  /// execution in-process.  Reports stay bit-identical at every worker
  /// count, and a worker killed mid-sweep is retried in-process.
  ExecutionConfig& workers(int n) { workers_ = n; return *this; }
  /// Executable to fork+exec as each worker (`<exe> worker --fd N`); the
  /// CLI and charterd pass their own binary.  Empty (default): plain fork
  /// of the current process image.  Only meaningful with workers > 0.
  ExecutionConfig& worker_exe(std::string exe) {
    worker_exe_ = std::move(exe);
    return *this;
  }

  // -- tape optimization --------------------------------------------------
  /// Fuse the lowered noise tape (faster, ~1e-12 agreement; the exact
  /// tape is bit-reproducible).
  ExecutionConfig& fused(bool on) { fused_ = on; return *this; }
  /// Pin the wide-fusion window for this session's runs: 0 (default)
  /// defers to the process-global noise::fusion_width(); 2 or 3 pins it
  /// per run (part of the run's cache fingerprint).  Only meaningful for
  /// the fused-wide tape level (StrategyKind::kDmFusedWide).
  ExecutionConfig& fusion_width(int w) { fusion_width_ = w; return *this; }

  // -- variance reduction -------------------------------------------------
  /// Share one seed across the original and every reversed run
  /// (common-random-numbers variance reduction; also what makes
  /// trajectory checkpoint sharing exact).
  ExecutionConfig& common_random_numbers(bool on) { crn_ = on; return *this; }

  // -- checkpointing / caching --------------------------------------------
  /// Resume jobs from prefix-state snapshots when exact (needs a backend
  /// with supports_lowering()).
  ExecutionConfig& checkpointing(bool on) { checkpointing_ = on; return *this; }
  /// Serve and populate the process-wide run cache (needs a backend with
  /// a cache identity).
  ExecutionConfig& caching(bool on) { caching_ = on; return *this; }
  /// Snapshot memory budget per batch.
  ExecutionConfig& checkpoint_memory_bytes(std::size_t n) {
    checkpoint_memory_bytes_ = n;
    return *this;
  }
  /// Attach a persistent disk tier to the process-wide run cache, rooted
  /// at \p dir (created if missing; empty = memory-only, the default).
  /// Entries are fingerprint-keyed, checksummed on load, and survive
  /// process restarts.  The tier is process-wide state: the last Session
  /// (or tool) to set it wins.
  ExecutionConfig& cache_dir(std::string dir) {
    cache_dir_ = std::move(dir);
    return *this;
  }
  /// Disk-tier byte budget; least-recently-used entries are evicted past
  /// it.  Only meaningful with a non-empty cache_dir.
  ExecutionConfig& cache_disk_bytes(std::size_t n) {
    cache_disk_bytes_ = n;
    return *this;
  }

  // -- strategy portfolio (exec/strategy.hpp) -----------------------------
  /// Execution strategy for every sweep.  kAuto (default): the session's
  /// planner picks per job family from its online cost model — with a
  /// cold model this is exactly the historical fixed-rule behavior.  A
  /// fixed kind (kDmExact, kDmFused, kDmFusedWide, kTrajectory) overrides
  /// the engine/tape configuration for every run.
  ExecutionConfig& strategy(exec::StrategyKind kind) {
    strategy_ = kind;
    return *this;
  }
  /// Adaptive trajectory budgets: stop allocating unravelling groups to a
  /// gate once its impact confidence interval separates from its rank
  /// neighbors.  Off (default) = BudgetMode::kFixedBudget, the mode the
  /// bit-identity contract is stated under; savings appear in
  /// exec_stats.trajectories_executed vs trajectories_budgeted.
  ExecutionConfig& adaptive(bool on) { adaptive_ = on; return *this; }
  /// Persist the planner's cost model at this path: loaded (if present)
  /// when the Session is constructed — a corrupt profile throws
  /// InvalidArgument then — and saved (atomically, temp + rename) when
  /// the Session is destroyed.  Empty (default): the model lives and
  /// dies with the session.
  ExecutionConfig& cost_profile(std::string path) {
    cost_profile_ = std::move(path);
    return *this;
  }

  // -- getters ------------------------------------------------------------
  int threads() const { return threads_; }
  int workers() const { return workers_; }
  const std::string& worker_exe() const { return worker_exe_; }
  bool fused() const { return fused_; }
  int fusion_width() const { return fusion_width_; }
  bool common_random_numbers() const { return crn_; }
  bool checkpointing() const { return checkpointing_; }
  bool caching() const { return caching_; }
  std::size_t checkpoint_memory_bytes() const {
    return checkpoint_memory_bytes_;
  }
  const std::string& cache_dir() const { return cache_dir_; }
  std::size_t cache_disk_bytes() const { return cache_disk_bytes_; }
  exec::StrategyKind strategy() const { return strategy_; }
  bool adaptive() const { return adaptive_; }
  const std::string& cost_profile() const { return cost_profile_; }

 private:
  int threads_ = 0;
  int workers_ = 0;
  std::string worker_exe_;
  bool fused_ = false;
  int fusion_width_ = 0;
  bool crn_ = false;
  bool checkpointing_ = true;
  bool caching_ = true;
  std::size_t checkpoint_memory_bytes_ = 512ull << 20;
  std::string cache_dir_;
  std::size_t cache_disk_bytes_ = 1ull << 30;
  exec::StrategyKind strategy_ = exec::StrategyKind::kAuto;
  bool adaptive_ = false;
  std::string cost_profile_;
};

/// Validated, builder-style session configuration: the analysis protocol
/// and per-run physics stay flat here; everything about *how* sweeps
/// execute lives in the nested ExecutionConfig (execution()).  Every
/// setter returns *this for chaining; validate() reports *actionable*
/// errors instead of silent fallbacks, and Session's constructor throws
/// InvalidArgument listing them all.
///
/// The pre-ExecutionConfig flat execution setters (threads, workers,
/// fused, ...) remain as deprecated forwarding shims — old code compiles
/// and behaves identically, with a deprecation warning pointing at the
/// replacement.
class SessionConfig {
 public:
  // -- analysis protocol (paper Sec. IV) ----------------------------------
  /// Reversed pairs per gate; the paper settles on 5.
  SessionConfig& reversals(int n) { reversals_ = n; return *this; }
  /// Skip virtual RZ gates (free on hardware; on by default).
  SessionConfig& skip_rz(bool on) { skip_rz_ = on; return *this; }
  /// Barrier-isolate reversed pairs (paper Fig. 5; on by default).
  SessionConfig& isolate(bool on) { isolate_ = on; return *this; }
  /// Analyze at most this many gates, subsampled evenly (0 = all).
  SessionConfig& max_gates(int n) { max_gates_ = n; return *this; }
  /// Also compute the ideal distribution and per-gate TVD vs ideal
  /// (validation only — not part of the technique).
  SessionConfig& validation(bool on) { validation_ = on; return *this; }
  // -- per-run execution --------------------------------------------------
  /// Shots to sample; 0 returns the exact engine-level distribution.
  SessionConfig& shots(std::int64_t n) { shots_ = n; return *this; }
  /// Simulation engine (kAuto: density matrix when it fits).
  SessionConfig& engine(backend::EngineKind kind) { engine_ = kind; return *this; }
  /// Trajectory count when the trajectory engine is used.
  SessionConfig& trajectories(int n) { trajectories_ = n; return *this; }
  /// Master seed for drift, trajectory branching, and shot sampling.
  SessionConfig& seed(std::uint64_t s) { seed_ = s; return *this; }
  /// Calibration drift magnitude per run (0 disables).
  SessionConfig& drift(double d) { drift_ = d; return *this; }

  // -- execution ----------------------------------------------------------
  /// The nested execution configuration: parallelism, caching,
  /// checkpointing, tape optimization, and the strategy portfolio.
  /// Mutable access chains naturally:
  ///   cfg.execution().threads(8).strategy(exec::StrategyKind::kAuto);
  ExecutionConfig& execution() { return exec_; }
  const ExecutionConfig& execution() const { return exec_; }
  /// Whole-object setter for builder-style one-liners:
  ///   SessionConfig().shots(1024).execution(ExecutionConfig().threads(4))
  SessionConfig& execution(ExecutionConfig exec) {
    exec_ = std::move(exec);
    return *this;
  }

  // -- deprecated flat execution shims ------------------------------------
  // Pre-ExecutionConfig spellings.  Each forwards to execution() and
  // behaves identically; new code should use the nested builder.
  [[deprecated("use execution().common_random_numbers()")]]
  SessionConfig& common_random_numbers(bool on) {
    exec_.common_random_numbers(on);
    return *this;
  }
  [[deprecated("use execution().fused()")]]
  SessionConfig& fused(bool on) { exec_.fused(on); return *this; }
  [[deprecated("use execution().checkpointing()")]]
  SessionConfig& checkpointing(bool on) {
    exec_.checkpointing(on);
    return *this;
  }
  [[deprecated("use execution().caching()")]]
  SessionConfig& caching(bool on) { exec_.caching(on); return *this; }
  [[deprecated("use execution().checkpoint_memory_bytes()")]]
  SessionConfig& checkpoint_memory_bytes(std::size_t n) {
    exec_.checkpoint_memory_bytes(n);
    return *this;
  }
  [[deprecated("use execution().threads()")]]
  SessionConfig& threads(int n) { exec_.threads(n); return *this; }
  [[deprecated("use execution().workers()")]]
  SessionConfig& workers(int n) { exec_.workers(n); return *this; }
  [[deprecated("use execution().worker_exe()")]]
  SessionConfig& worker_exe(std::string exe) {
    exec_.worker_exe(std::move(exe));
    return *this;
  }
  [[deprecated("use execution().cache_dir()")]]
  SessionConfig& cache_dir(std::string dir) {
    exec_.cache_dir(std::move(dir));
    return *this;
  }
  [[deprecated("use execution().cache_disk_bytes()")]]
  SessionConfig& cache_disk_bytes(std::size_t n) {
    exec_.cache_disk_bytes(n);
    return *this;
  }

  // -- getters ------------------------------------------------------------
  int reversals() const { return reversals_; }
  bool skip_rz() const { return skip_rz_; }
  bool isolate() const { return isolate_; }
  int max_gates() const { return max_gates_; }
  bool validation() const { return validation_; }
  std::int64_t shots() const { return shots_; }
  backend::EngineKind engine() const { return engine_; }
  int trajectories() const { return trajectories_; }
  std::uint64_t seed() const { return seed_; }
  double drift() const { return drift_; }
  // Deprecated flat getters (forward to execution()).
  [[deprecated("use execution().common_random_numbers()")]]
  bool common_random_numbers() const { return exec_.common_random_numbers(); }
  [[deprecated("use execution().fused()")]]
  bool fused() const { return exec_.fused(); }
  [[deprecated("use execution().checkpointing()")]]
  bool checkpointing() const { return exec_.checkpointing(); }
  [[deprecated("use execution().caching()")]]
  bool caching() const { return exec_.caching(); }
  [[deprecated("use execution().checkpoint_memory_bytes()")]]
  std::size_t checkpoint_memory_bytes() const {
    return exec_.checkpoint_memory_bytes();
  }
  [[deprecated("use execution().threads()")]]
  int threads() const { return exec_.threads(); }
  [[deprecated("use execution().workers()")]]
  int workers() const { return exec_.workers(); }
  [[deprecated("use execution().worker_exe()")]]
  const std::string& worker_exe() const { return exec_.worker_exe(); }
  [[deprecated("use execution().cache_dir()")]]
  const std::string& cache_dir() const { return exec_.cache_dir(); }
  [[deprecated("use execution().cache_disk_bytes()")]]
  std::size_t cache_disk_bytes() const { return exec_.cache_disk_bytes(); }

  /// Checks every knob and returns one actionable message per problem
  /// (empty = valid).  Session's constructor calls this and throws
  /// InvalidArgument with the joined list, so a misconfigured session
  /// fails at construction, not mid-sweep.
  std::vector<std::string> validate() const;

  /// Lossless mapping onto the layered option structs the pipeline
  /// consumes.  Requires validate().empty().
  core::CharterOptions resolved() const;

 private:
  int reversals_ = 5;
  bool skip_rz_ = true;
  bool isolate_ = true;
  int max_gates_ = 0;
  bool validation_ = false;
  std::int64_t shots_ = 4096;
  backend::EngineKind engine_ = backend::EngineKind::kAuto;
  int trajectories_ = 48;
  std::uint64_t seed_ = 1;
  double drift_ = 0.0;
  ExecutionConfig exec_;
};

/// Lifecycle of a submitted job.  Terminal states: kDone, kCancelled,
/// kFailed.
enum class JobStatus { kQueued, kRunning, kDone, kCancelled, kFailed };

/// Lower-case name ("queued", "running", ...) for logs and JSON output.
std::string to_string(JobStatus status);

/// What a job computes.
enum class JobKind {
  kAnalyze,       ///< full per-gate sweep -> CharterReport
  kInputImpact,   ///< input-block reversal -> one TVD
  kCharacterize,  ///< germ-ladder estimation -> CharacterizationReport
};

/// Monotone progress snapshot: \p completed circuit executions out of
/// \p total (the original run plus one reversed circuit per analyzed
/// gate; 2 for input-impact jobs).
struct JobProgress {
  std::size_t completed = 0;
  std::size_t total = 0;
};

/// Final outcome of a job.  `report` is meaningful for kAnalyze jobs that
/// reached kDone (and carries its own exec stats in report.exec_stats);
/// `input_tvd` for kInputImpact jobs; `characterization` for
/// kCharacterize jobs; `error` for kFailed.
struct JobResult {
  JobKind kind = JobKind::kAnalyze;
  JobStatus status = JobStatus::kQueued;
  core::CharterReport report;
  double input_tvd = 0.0;
  characterize::CharacterizationReport characterization;
  std::string error;
};

/// Optional per-job callbacks.  Both fire while the job runs: on_progress
/// from exec worker threads (serialized, strictly monotone in completed),
/// on_impact from the job's coordinating thread in deterministic
/// submission order (ascending op_index).  Callbacks must not block; they
/// may call JobHandle::cancel().
struct JobCallbacks {
  std::function<void(const JobProgress&)> on_progress;
  std::function<void(const core::GateImpact&)> on_impact;
};

namespace detail {
struct JobState;
}  // namespace detail

/// Shared, copyable reference to one submitted job.  Outlives the Session
/// safely.
class JobHandle {
 public:
  JobHandle() = default;  ///< invalid handle

  bool valid() const { return state_ != nullptr; }
  /// Session-unique id (1, 2, ... in submission order).
  std::uint64_t id() const;
  JobKind kind() const;
  JobStatus status() const;
  JobProgress progress() const;

  /// Requests cooperative cancellation: workers stop claiming runs at the
  /// next job boundary and the result resolves to kCancelled.  No-op on a
  /// finished job.  Safe from any thread, including the job's own
  /// callbacks.
  void cancel() const;

  /// Blocks until the job reaches a terminal state and returns the
  /// result (valid for the life of this handle).
  const JobResult& wait() const;

  /// Waits up to \p timeout; true when the job is terminal.
  bool wait_for(std::chrono::milliseconds timeout) const;

 private:
  friend class Session;
  explicit JobHandle(std::shared_ptr<detail::JobState> state)
      : state_(std::move(state)) {}

  std::shared_ptr<detail::JobState> state_;
};

/// The public charter service facade: one device + one validated
/// configuration -> asynchronous analysis jobs.
///
/// Thread-safety: submit/analyze/input_impact/compile may be called from
/// any thread.  Jobs execute strictly in submission order on the
/// session's worker thread; each sweep parallelizes internally across
/// SessionConfig::threads exec workers.  Destroying the session cancels
/// queued jobs, flags the in-flight one, and joins — handles already
/// returned stay valid and resolve (to kCancelled if interrupted).
class Session {
 public:
  /// Non-owning: \p backend must outlive the session.
  explicit Session(const backend::Backend& backend, SessionConfig config = {});
  /// Owning.
  explicit Session(std::shared_ptr<const backend::Backend> backend,
                   SessionConfig config = {});
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const backend::Backend& backend() const { return *backend_; }
  const SessionConfig& config() const { return config_; }

  /// The session's strategy planner: the online cost model every sweep
  /// feeds wall-clock observations into and (under StrategyKind::kAuto)
  /// plans from.  Always present; shared across all of this session's
  /// jobs and internally synchronized.  When
  /// execution().cost_profile() names a path, the model is seeded from it
  /// at construction (a corrupt profile throws InvalidArgument) and
  /// persisted back on destruction (atomically; a failed save is noted on
  /// stderr, never thrown — destructors stay quiet).
  exec::StrategyPlanner& planner() const { return *planner_; }

  /// Compiles a logical circuit on the session's device.
  backend::CompiledProgram compile(
      const circ::Circuit& logical,
      const transpile::TranspileOptions& options = {}) const;

  /// Enqueues a full per-gate analysis of \p program and returns
  /// immediately.  The program is captured by value: the caller may drop
  /// or mutate its copy freely.
  JobHandle submit(backend::CompiledProgram program,
                   JobCallbacks callbacks = {});

  /// Enqueues an input-block reversal impact computation (paper Sec. V).
  JobHandle submit_input_impact(backend::CompiledProgram program,
                                JobCallbacks callbacks = {});

  /// Enqueues error-channel characterization of the top-\p top_k gates of
  /// \p charter (a finished analysis of \p program — op indices and gate
  /// kinds are cross-checked).  Germ ladders, decay fits, and bootstrap
  /// CIs run with the session's execution configuration; characterization
  /// always uses common random numbers (the decay curve is a
  /// within-experiment comparison) and a fixed trajectory budget.
  JobHandle submit_characterization(backend::CompiledProgram program,
                                    core::CharterReport charter,
                                    int top_k = 3, JobCallbacks callbacks = {});

  /// Synchronous conveniences: submit + wait, rethrowing failures.
  core::CharterReport analyze(const backend::CompiledProgram& program);
  double input_impact(const backend::CompiledProgram& program);
  characterize::CharacterizationReport characterize(
      const backend::CompiledProgram& program,
      const core::CharterReport& charter, int top_k = 3);

  /// Requests cancellation of every queued and running job.
  void cancel_all();

  /// Jobs submitted but not yet terminal (queued + running).
  std::size_t outstanding_jobs() const;

  /// Snapshot of the process-wide run cache (both tiers).  Static because
  /// the cache is shared across every Session in the process — per-job
  /// tier splits live in CharterReport::exec_stats instead.
  static exec::RunCache::Stats cache_stats();

 private:
  JobHandle enqueue(JobKind kind, backend::CompiledProgram program,
                    JobCallbacks callbacks, core::CharterReport charter = {},
                    int top_k = 0);
  characterize::CharacterizeOptions characterization_options(int top_k) const;
  void worker_main();
  void run_job(detail::JobState& job);

  std::shared_ptr<const backend::Backend> backend_;
  SessionConfig config_;
  std::shared_ptr<exec::StrategyPlanner> planner_;
  core::CharterOptions options_;  ///< config_.resolved(), computed once

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<detail::JobState>> queue_;  // under mu_
  std::shared_ptr<detail::JobState> running_;            // under mu_
  std::uint64_t next_id_ = 1;                            // under mu_
  bool closed_ = false;                                  // under mu_
  std::thread worker_;  ///< runs jobs in submission order
};

}  // namespace charter
