#pragma once

/// \file charter/error.hpp
/// Public module header: the exception hierarchy every charter API throws
/// (charter::Error and its InvalidArgument / NotFound / Cancelled
/// subclasses).

#include "util/error.hpp"
