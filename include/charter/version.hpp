#pragma once

/// \file charter/version.hpp
/// Library version, kept in lockstep with the CMake project() version.

#define CHARTER_VERSION_MAJOR 0
#define CHARTER_VERSION_MINOR 5
#define CHARTER_VERSION_PATCH 0
#define CHARTER_VERSION_STRING "0.5.0"
