// Custom device: charter on your own topology and noise data.
//
// Everything the fake IBM backends do is available piecewise: build a
// Topology, fill a NoiseModel (from your own characterization data or the
// seeded generator), wrap them in a FakeBackend, and analyze any circuit.
// Here we build a 5-qubit ring with one deliberately bad edge and verify
// charter flags the gates crossing it.
//
// Build & run:  ./build/examples/custom_device

#include <cstdio>

#include "backend/backend.hpp"
#include "circuit/circuit.hpp"
#include "core/analyzer.hpp"
#include "noise/calibration.hpp"
#include "transpile/topology.hpp"
#include "util/table.hpp"

int main() {
  namespace cb = charter::backend;
  namespace cc = charter::circ;
  namespace cn = charter::noise;
  namespace co = charter::core;
  namespace ct = charter::transpile;

  // A 5-qubit ring with generated calibration...
  const ct::Topology topo = ct::ring(5);
  cn::NoiseModel model =
      cn::generate_calibration(5, topo.edges(), /*seed=*/123);
  // ...and one edge that degraded badly since the last calibration.
  model.edge(2, 3).cx_depol = 0.15;
  cb::FakeBackend backend(topo, model);

  // A ring of entangling gates touches every edge, including the bad one.
  cc::Circuit circuit(5);
  for (int q = 0; q < 5; ++q) circuit.h(q);
  for (int q = 0; q < 5; ++q) circuit.cx(q, (q + 1) % 5);
  for (int q = 0; q < 5; ++q) circuit.h(q);

  // Compile with a trivial layout so the logical ring maps onto the
  // physical ring directly (noise-aware layout would dodge the bad edge —
  // which is also worth seeing; flip the flag to compare).
  ct::TranspileOptions topts;
  topts.noise_aware = false;
  const cb::CompiledProgram program = backend.compile(circuit, topts);

  co::CharterOptions options;
  options.reversals = 5;
  options.run.shots = 16384;
  options.run.seed = 3;
  const co::CharterAnalyzer analyzer(backend, options);
  const co::CharterReport report = analyzer.analyze(program);

  charter::util::Table table(
      "Gate ranking on the custom ring (edge 2-3 is degraded):");
  table.set_header({"Rank", "Gate", "Phys qubits", "Impact (TVD)"});
  const auto ranked = report.sorted_by_impact();
  for (std::size_t i = 0; i < 8 && i < ranked.size(); ++i) {
    std::string qubits = std::to_string(ranked[i].qubits[0]);
    if (ranked[i].num_qubits == 2)
      qubits += "," + std::to_string(ranked[i].qubits[1]);
    table.add_row({std::to_string(i + 1),
                   cc::gate_name(ranked[i].kind), qubits,
                   charter::util::Table::fmt(ranked[i].tvd, 3)});
  }
  std::size_t degraded_rank = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].num_qubits == 2 &&
        ((ranked[i].qubits[0] == 2 && ranked[i].qubits[1] == 3) ||
         (ranked[i].qubits[0] == 3 && ranked[i].qubits[1] == 2))) {
      degraded_rank = i + 1;
      break;
    }
  }
  char note[200];
  std::snprintf(note, sizeof(note),
                "the degraded edge 2-3 ranks #%zu; if a healthier gate "
                "out-ranks it, that is the paper's Observation I at work: "
                "position in the circuit matters as much as the raw error "
                "rate",
                degraded_rank);
  table.add_footnote(note);
  table.print();
  return 0;
}
