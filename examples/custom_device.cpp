// Custom device: charter on your own topology, noise data — or your own
// Backend implementation.
//
// Part 1 builds a device piecewise: a Topology, a NoiseModel (from your
// own characterization data or the seeded generator), wrapped in a
// FakeBackend.  We give a 5-qubit ring one deliberately bad edge and
// verify charter flags the gates crossing it.
//
// Part 2 shows the abstract backend::Backend interface: a custom subclass
// plugs into the same Session without touching core.  IdealizedDevice
// delegates compilation to the ring device but *executes noiselessly* —
// charter on perfect hardware reports (near-)zero impact for every gate,
// a useful sanity probe when bringing up a new backend.  A minimal
// Backend only implements compile/run/ideal/duration_ns; the exec layer
// then runs every job whole (no lowering, no checkpoint sharing, no run
// cache) — slower, never wrong.
//
// Build & run:  ./build/example_custom_device

#include <algorithm>
#include <cstdio>

#include <charter/charter.hpp>

#include "util/table.hpp"

namespace cb = charter::backend;
namespace cc = charter::circ;
namespace cn = charter::noise;
namespace ct = charter::transpile;

namespace {

/// A custom Backend: same compilation as the wrapped device, noiseless
/// execution.  Only the four required virtuals are implemented.
class IdealizedDevice final : public cb::Backend {
 public:
  explicit IdealizedDevice(const cb::FakeBackend& device)
      : device_(device), name_("ideal(" + device.name() + ")") {}

  const std::string& name() const override { return name_; }

  cb::CompiledProgram compile(
      const cc::Circuit& logical,
      const ct::TranspileOptions& options) const override {
    return device_.compile(logical, options);
  }

  std::vector<double> run(const cb::CompiledProgram& program,
                          const cb::RunOptions&) const override {
    return device_.ideal(program);  // perfect hardware: run == ideal
  }

  std::vector<double> ideal(const cb::CompiledProgram& program) const override {
    return device_.ideal(program);
  }

  double duration_ns(const cb::CompiledProgram& program) const override {
    return device_.duration_ns(program);
  }

 private:
  const cb::FakeBackend& device_;
  std::string name_;
};

}  // namespace

int main() {
  // A 5-qubit ring with generated calibration...
  const ct::Topology topo = ct::ring(5);
  cn::NoiseModel model =
      cn::generate_calibration(5, topo.edges(), /*seed=*/123);
  // ...and one edge that degraded badly since the last calibration.
  model.edge(2, 3).cx_depol = 0.15;
  cb::FakeBackend backend(topo, model);

  // A ring of entangling gates touches every edge, including the bad one.
  cc::Circuit circuit(5);
  for (int q = 0; q < 5; ++q) circuit.h(q);
  for (int q = 0; q < 5; ++q) circuit.cx(q, (q + 1) % 5);
  for (int q = 0; q < 5; ++q) circuit.h(q);

  // Compile with a trivial layout so the logical ring maps onto the
  // physical ring directly (noise-aware layout would dodge the bad edge —
  // which is also worth seeing; flip the flag to compare).
  ct::TranspileOptions topts;
  topts.noise_aware = false;

  charter::Session session(
      backend,
      charter::SessionConfig().reversals(5).shots(16384).seed(3));
  const cb::CompiledProgram program = session.compile(circuit, topts);
  const charter::core::CharterReport report = session.analyze(program);

  charter::util::Table table(
      "Gate ranking on the custom ring (edge 2-3 is degraded):");
  table.set_header({"Rank", "Gate", "Phys qubits", "Impact (TVD)"});
  const auto ranked = report.sorted_by_impact();
  for (std::size_t i = 0; i < 8 && i < ranked.size(); ++i) {
    std::string qubits = std::to_string(ranked[i].qubits[0]);
    if (ranked[i].num_qubits == 2)
      qubits += "," + std::to_string(ranked[i].qubits[1]);
    table.add_row({std::to_string(i + 1),
                   cc::gate_name(ranked[i].kind), qubits,
                   charter::util::Table::fmt(ranked[i].tvd, 3)});
  }
  std::size_t degraded_rank = ranked.size();
  for (std::size_t i = 0; i < ranked.size(); ++i) {
    if (ranked[i].num_qubits == 2 &&
        ((ranked[i].qubits[0] == 2 && ranked[i].qubits[1] == 3) ||
         (ranked[i].qubits[0] == 3 && ranked[i].qubits[1] == 2))) {
      degraded_rank = i + 1;
      break;
    }
  }
  char note[200];
  std::snprintf(note, sizeof(note),
                "the degraded edge 2-3 ranks #%zu; if a healthier gate "
                "out-ranks it, that is the paper's Observation I at work: "
                "position in the circuit matters as much as the raw error "
                "rate",
                degraded_rank);
  table.add_footnote(note);
  table.print();

  // Part 2: the same analysis through a custom Backend subclass.  On the
  // idealized device every reversed pair cancels exactly, so the charter
  // score of every gate collapses to ~0 — the interface contract at work.
  const IdealizedDevice ideal_device(backend);
  charter::Session ideal_session(
      ideal_device,
      charter::SessionConfig().reversals(5).shots(0).seed(3));
  const charter::core::CharterReport ideal_report =
      ideal_session.analyze(program);
  double worst = 0.0;
  for (const auto& g : ideal_report.impacts)
    worst = std::max(worst, g.tvd);
  std::printf("\nCustom Backend subclass '%s' (noiseless run()): worst "
              "per-gate impact %.2e TVD across %zu gates — perfect "
              "hardware has no critical gates.\n",
              ideal_session.backend().name().c_str(), worst,
              ideal_report.impacts.size());
  return worst < 1e-9 ? 0 : 1;
}
