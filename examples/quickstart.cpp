// Quickstart: the complete charter workflow in ~60 lines, on the public
// Session facade.
//
//  1. Build a logical circuit with the fluent builder.
//  2. Open a Session on a fake IBM device with a validated config.
//  3. Submit the compiled program as an async job; watch its progress.
//  4. Print the gates ranked by their impact on the output error.
//
// Build & run:  ./build/example_quickstart

#include <cstdio>

#include <charter/charter.hpp>

#include "util/table.hpp"

int main() {
  namespace cb = charter::backend;
  namespace cc = charter::circ;
  namespace co = charter::core;

  // A 3-qubit GHZ preparation followed by a phase kickback — small enough
  // to read, structured enough to have interesting criticality.
  cc::Circuit circuit(3);
  circuit.h(0).cx(0, 1).cx(1, 2);
  circuit.rz(2, 0.7).cx(1, 2).cx(0, 1).h(0);

  std::printf("Logical circuit:\n%s\n",
              cc::to_ascii(circuit).c_str());

  // A 7-qubit fake device with seeded IBM-era calibration data, wrapped in
  // a session: 5 reversals per gate, 8192 shots per run.
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  charter::Session session(
      backend, charter::SessionConfig().reversals(5).shots(8192).seed(42));
  const cb::CompiledProgram program = session.compile(circuit);
  std::printf("Compiled to %zu basis gates on %s.\n\n",
              program.physical.size(), backend.name().c_str());

  // Asynchronous submission: submit() returns at once; the callback
  // streams progress while the sweep runs on the session's workers.
  charter::JobCallbacks callbacks;
  callbacks.on_progress = [](const charter::JobProgress& p) {
    std::fprintf(stderr, "\ranalyzing: %zu/%zu runs", p.completed, p.total);
    if (p.completed == p.total) std::fputc('\n', stderr);
  };
  charter::JobHandle job = session.submit(program, callbacks);
  const charter::JobResult& result = job.wait();
  const co::CharterReport& report = result.report;

  charter::util::Table table("Gates ranked by error impact (top 10):");
  table.set_header({"Rank", "Gate", "Phys qubits", "Layer", "Impact (TVD)"});
  const auto ranked = report.sorted_by_impact();
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size());
       ++i) {
    const co::GateImpact& g = ranked[i];
    std::string qubits = std::to_string(g.qubits[0]);
    if (g.num_qubits == 2) qubits += "," + std::to_string(g.qubits[1]);
    table.add_row({std::to_string(i + 1), cc::gate_name(g.kind), qubits,
                   std::to_string(g.layer),
                   charter::util::Table::fmt(g.tvd, 3)});
  }
  table.add_footnote(
      std::to_string(report.analyzed_gates) + " of " +
      std::to_string(report.total_gates) +
      " gates analyzed (virtual RZ gates are skipped -- they are free)");
  table.print();
  return result.status == charter::JobStatus::kDone ? 0 : 1;
}
