// Quickstart: the complete charter workflow in ~60 lines.
//
//  1. Build a logical circuit with the fluent builder.
//  2. Compile it for a fake IBM device (transpile + noise-aware layout).
//  3. Run charter: one reversed circuit per gate, amplified 5x.
//  4. Print the gates ranked by their impact on the output error.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "backend/backend.hpp"
#include "circuit/circuit.hpp"
#include "circuit/print.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"

int main() {
  namespace cb = charter::backend;
  namespace cc = charter::circ;
  namespace co = charter::core;

  // A 3-qubit GHZ preparation followed by a phase kickback — small enough
  // to read, structured enough to have interesting criticality.
  cc::Circuit circuit(3);
  circuit.h(0).cx(0, 1).cx(1, 2);
  circuit.rz(2, 0.7).cx(1, 2).cx(0, 1).h(0);

  std::printf("Logical circuit:\n%s\n",
              cc::to_ascii(circuit).c_str());

  // A 7-qubit fake device with seeded IBM-era calibration data.
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  const cb::CompiledProgram program = backend.compile(circuit);
  std::printf("Compiled to %zu basis gates on %s.\n\n",
              program.physical.size(), backend.name().c_str());

  // Charter analysis: 5 reversals per gate, 8192 shots per run.
  co::CharterOptions options;
  options.reversals = 5;
  options.run.shots = 8192;
  options.run.seed = 42;
  const co::CharterAnalyzer analyzer(backend, options);
  const co::CharterReport report = analyzer.analyze(program);

  charter::util::Table table("Gates ranked by error impact (top 10):");
  table.set_header({"Rank", "Gate", "Phys qubits", "Layer", "Impact (TVD)"});
  const auto ranked = report.sorted_by_impact();
  for (std::size_t i = 0; i < std::min<std::size_t>(10, ranked.size());
       ++i) {
    const co::GateImpact& g = ranked[i];
    std::string qubits = std::to_string(g.qubits[0]);
    if (g.num_qubits == 2) qubits += "," + std::to_string(g.qubits[1]);
    table.add_row({std::to_string(i + 1), cc::gate_name(g.kind), qubits,
                   std::to_string(g.layer),
                   charter::util::Table::fmt(g.tvd, 3)});
  }
  table.add_footnote(
      std::to_string(report.analyzed_gates) + " of " +
      std::to_string(report.total_gates) +
      " gates analyzed (virtual RZ gates are skipped -- they are free)");
  table.print();
  return 0;
}
