// QFT case study: a per-layer criticality profile, like the paper's Fig. 7.
//
// Runs charter over every gate of a compiled QFT(3) (including the virtual
// RZ gates, to show why they can be skipped) and prints a per-qubit,
// per-layer text profile of the impacts.
//
// Build & run:  ./build/examples/qft_case_study [hamming-weight 0..3]

#include <cstdio>
#include <cstdlib>
#include <map>

#include <charter/charter.hpp>

#include "sim/measurement.hpp"

int main(int argc, char** argv) {
  namespace cb = charter::backend;
  namespace cc = charter::circ;
  namespace co = charter::core;

  int hamming_weight = 0;
  if (argc > 1) hamming_weight = std::atoi(argv[1]);
  if (hamming_weight < 0 || hamming_weight > 3) {
    std::fprintf(stderr, "usage: %s [hamming-weight 0..3]\n", argv[0]);
    return 1;
  }
  const std::uint64_t outputs[4] = {0, 1, 3, 7};
  const std::uint64_t k = outputs[hamming_weight];

  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  charter::Session session(
      backend,
      charter::SessionConfig()
          .reversals(5)
          .skip_rz(false)  // include RZ to demonstrate its ~zero impact
          .shots(8192)
          .seed(2022 + static_cast<std::uint64_t>(hamming_weight)));
  const cb::CompiledProgram program =
      session.compile(charter::algos::qft(3, k));

  std::printf("QFT(3) with ideal output |%s> (Hamming weight %d), compiled "
              "to %zu gates:\n\n%s\n",
              charter::sim::bitstring(k, 3).c_str(), hamming_weight,
              program.physical.size(),
              cc::to_ascii(program.physical, 60).c_str());

  const co::CharterReport report = session.analyze(program);

  // Per-qubit rows of layer-indexed impact marks, like the paper's bars:
  // '.' < 0.05, '-' < 0.15, '=' < 0.3, '#' >= 0.3.
  std::map<int, std::map<int, double>> impact_by_qubit_layer;
  int max_layer = 0;
  for (const co::GateImpact& g : report.impacts) {
    for (int i = 0; i < g.num_qubits; ++i) {
      auto& cell = impact_by_qubit_layer[g.qubits[i]][g.layer];
      cell = std::max(cell, g.tvd);
    }
    max_layer = std::max(max_layer, g.layer);
  }
  std::printf("Impact profile (columns = layers; '.'<0.05 '-'<0.15 '='<0.3 "
              "'#'>=0.3):\n");
  for (const auto& [qubit, layers] : impact_by_qubit_layer) {
    std::printf("  phys q%-2d ", qubit);
    for (int l = 0; l <= max_layer; ++l) {
      const auto it = layers.find(l);
      if (it == layers.end()) {
        std::printf(" ");
      } else if (it->second < 0.05) {
        std::printf(".");
      } else if (it->second < 0.15) {
        std::printf("-");
      } else if (it->second < 0.3) {
        std::printf("=");
      } else {
        std::printf("#");
      }
    }
    std::printf("\n");
  }

  const auto top = report.sorted_by_impact();
  std::printf("\nHighest-impact gate: %s on q%d at layer %d (TVD %.3f)\n",
              cc::gate_name(top[0].kind).c_str(), top[0].qubits[0],
              top[0].layer, top[0].tvd);
  std::printf("Input-block reversal impact for this input: %.3f\n",
              session.input_impact(program));
  return 0;
}
