// Mitigation workflow: find the critical gates, then fix them.
//
// Charter's output is actionable: the paper serializes the layers holding
// the highest-impact gates (barriers force them to run alone), trading a
// slightly longer schedule for the removed drive crosstalk.  This example
// walks the full loop on a Trotterized TFIM circuit and prints the output
// error before and after, plus what over-serializing would have cost.
//
// Build & run:  ./build/examples/mitigation_workflow

#include <cstdio>

#include <charter/charter.hpp>

#include "util/table.hpp"

int main() {
  namespace cb = charter::backend;
  namespace co = charter::core;

  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  charter::Session session(
      backend, charter::SessionConfig().reversals(5).shots(8192).seed(11));
  const cb::CompiledProgram program =
      session.compile(charter::algos::tfim(4, 5));

  // Step 1: charter analysis through the facade.
  const co::CharterReport report = session.analyze(program);

  const auto top = report.sorted_by_impact();
  std::printf("Top-3 critical gates found by charter:\n");
  for (std::size_t i = 0; i < 3 && i < top.size(); ++i)
    std::printf("  #%zu: %s at layer %d, impact %.3f\n", i + 1,
                charter::circ::gate_name(top[i].kind).c_str(), top[i].layer,
                top[i].tvd);

  // Step 2: serialize increasing fractions and compare against ideal.
  cb::RunOptions run;
  run.shots = 0;
  run.seed = 11;
  const auto ideal = backend.ideal(program);
  const double baseline =
      charter::stats::tvd(backend.run(program, run), ideal);

  charter::util::Table table("\nSelective serialization sweep (TFIM(4)):");
  table.set_header({"Serialized top fraction", "Output TVD vs ideal",
                    "Schedule length (ns)"});
  table.add_row({"0% (baseline)", charter::util::Table::fmt(baseline, 3),
                 charter::util::Table::fmt(backend.duration_ns(program), 0)});
  for (const double fraction : {0.05, 0.15, 0.50, 1.0}) {
    cb::CompiledProgram mitigated = program;
    mitigated.physical =
        co::serialize_high_impact(program.physical, report, fraction);
    const double err =
        charter::stats::tvd(backend.run(mitigated, run), ideal);
    table.add_row({charter::util::Table::fmt_percent(fraction),
                   charter::util::Table::fmt(err, 3),
                   charter::util::Table::fmt(
                       backend.duration_ns(mitigated), 0)});
  }
  table.add_footnote(
      "selective serialization removes crosstalk where it matters; "
      "serializing everything stretches the schedule and lets decoherence "
      "eat the gains (the paper's caution)");
  table.print();
  return 0;
}
