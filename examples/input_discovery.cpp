// Input discovery: which program input makes the hardware hurt the most?
//
// The paper's Sec. V use case: instead of reversing one gate at a time,
// charter reverses *all input-preparation gates as one block*.  The
// resulting TVD scores the combined criticality of the input loading for
// each candidate input — here, the operand pairs of a 2-bit quantum adder.
//
// Build & run:  ./build/examples/input_discovery

#include <cstdio>
#include <vector>

#include <charter/charter.hpp>

#include "util/table.hpp"

int main() {
  namespace cb = charter::backend;

  // One session, many async jobs: every operand pair's input-impact
  // computation is queued up front; the handles resolve in submission
  // order while the table is assembled.
  const cb::FakeBackend backend = cb::FakeBackend::lagos();
  charter::Session session(
      backend, charter::SessionConfig().reversals(5).shots(8192).seed(7));

  charter::util::Table table(
      "Input-block reversal impact of a 2-bit Cuccaro adder, per operand "
      "pair:");
  table.set_header({"a", "b", "a+b", "Input impact (TVD)"});

  struct Case {
    std::uint64_t a, b;
    charter::JobHandle job;
  };
  std::vector<Case> cases;
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      if (a + b == 0) continue;  // no prep gates to reverse for 0+0
      const auto program = session.compile(
          charter::algos::cuccaro_adder(2, a, b, /*carry_out=*/true));
      cases.push_back({a, b, session.submit_input_impact(program)});
    }
  }

  double worst = -1.0;
  std::pair<std::uint64_t, std::uint64_t> worst_input{0, 0};
  for (const Case& c : cases) {
    const charter::JobResult& result = c.job.wait();
    if (result.status != charter::JobStatus::kDone) {
      std::fprintf(stderr, "job %llu (a=%llu b=%llu) ended %s: %s\n",
                   static_cast<unsigned long long>(c.job.id()),
                   static_cast<unsigned long long>(c.a),
                   static_cast<unsigned long long>(c.b),
                   charter::to_string(result.status).c_str(),
                   result.error.c_str());
      return 1;
    }
    const double impact = result.input_tvd;
    if (impact > worst) {
      worst = impact;
      worst_input = {c.a, c.b};
    }
    table.add_row({std::to_string(c.a), std::to_string(c.b),
                   std::to_string(c.a + c.b),
                   charter::util::Table::fmt(impact, 3)});
  }
  char note[256];
  std::snprintf(note, sizeof(note),
                "most error-sensitive input: a=%llu b=%llu (TVD %.3f) -- "
                "more X gates loaded generally means more to lose",
                static_cast<unsigned long long>(worst_input.first),
                static_cast<unsigned long long>(worst_input.second), worst);
  table.add_footnote(note);
  table.print();
  return 0;
}
