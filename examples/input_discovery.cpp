// Input discovery: which program input makes the hardware hurt the most?
//
// The paper's Sec. V use case: instead of reversing one gate at a time,
// charter reverses *all input-preparation gates as one block*.  The
// resulting TVD scores the combined criticality of the input loading for
// each candidate input — here, the operand pairs of a 2-bit quantum adder.
//
// Build & run:  ./build/examples/input_discovery

#include <cstdio>

#include "algos/algorithms.hpp"
#include "backend/backend.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"

int main() {
  namespace cb = charter::backend;
  namespace co = charter::core;

  const cb::FakeBackend backend = cb::FakeBackend::lagos();

  co::CharterOptions options;
  options.reversals = 5;
  options.run.shots = 8192;
  options.run.seed = 7;
  const co::CharterAnalyzer analyzer(backend, options);

  charter::util::Table table(
      "Input-block reversal impact of a 2-bit Cuccaro adder, per operand "
      "pair:");
  table.set_header({"a", "b", "a+b", "Input impact (TVD)"});

  double worst = -1.0;
  std::pair<std::uint64_t, std::uint64_t> worst_input{0, 0};
  for (std::uint64_t a = 0; a < 4; ++a) {
    for (std::uint64_t b = 0; b < 4; ++b) {
      if (a + b == 0) continue;  // no prep gates to reverse for 0+0
      const auto program = backend.compile(
          charter::algos::cuccaro_adder(2, a, b, /*carry_out=*/true));
      const double impact = analyzer.input_impact(program);
      if (impact > worst) {
        worst = impact;
        worst_input = {a, b};
      }
      table.add_row({std::to_string(a), std::to_string(b),
                     std::to_string(a + b),
                     charter::util::Table::fmt(impact, 3)});
    }
  }
  char note[256];
  std::snprintf(note, sizeof(note),
                "most error-sensitive input: a=%llu b=%llu (TVD %.3f) -- "
                "more X gates loaded generally means more to lose",
                static_cast<unsigned long long>(worst_input.first),
                static_cast<unsigned long long>(worst_input.second), worst);
  table.add_footnote(note);
  table.print();
  return 0;
}
